//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact surface the workspace consumes: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the diagnosis experiments rely on. The stream is
//! *not* bit-compatible with upstream `rand`; only determinism and
//! rough uniformity are promised.

#![deny(missing_docs)]

use std::ops::Range;

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A half-open range a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Lemire multiply-shift; bias is negligible for the
                // spans used here and determinism is what matters.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                self.start + draw as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as upstream does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
