//! Shared BISD controller building blocks: address trigger, data
//! background generator, memory-size table and comparator array.

use crate::log::{DiagnosisLog, DiagnosisRecord};
use march::DataBackground;
use sram_model::{AccessProfile, Address, DataWord, FailingBits, MemConfig, MemoryId};
use std::collections::BTreeMap;

/// The global address trigger of the shared controller.
///
/// The controller only *triggers* the per-memory local address
/// generators: it counts up to the capacity of the largest memory and
/// each local generator wraps the count into its own address space
/// (Sec. 3.1), which is also how the scheme in [7,8] works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressTrigger {
    max_words: u64,
}

impl AddressTrigger {
    /// Creates a trigger sized for the largest memory of the population.
    ///
    /// # Panics
    ///
    /// Panics if `max_words` is zero.
    pub fn new(max_words: u64) -> Self {
        assert!(max_words > 0, "address trigger needs at least one word");
        AddressTrigger { max_words }
    }

    /// Capacity of the largest memory.
    pub fn max_words(&self) -> u64 {
        self.max_words
    }

    /// Global addresses in ascending order.
    pub fn ascending(&self) -> impl Iterator<Item = Address> {
        (0..self.max_words).map(Address::new)
    }

    /// Global addresses in descending order.
    pub fn descending(&self) -> impl Iterator<Item = Address> {
        (0..self.max_words).rev().map(Address::new)
    }

    /// Maps a global address onto a memory with `words` words (local
    /// address generators wrap around).
    pub fn local_address(&self, global: Address, words: u64) -> Address {
        global.wrapped(words)
    }
}

/// The shared data background generator.
///
/// It always produces the pattern of the widest memory; narrower
/// memories receive the low-order bits through their SPC (MSB-first
/// delivery, Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataBackgroundGenerator {
    widest: usize,
}

impl DataBackgroundGenerator {
    /// Creates a generator for a population whose widest memory has
    /// `widest` IO bits.
    ///
    /// # Panics
    ///
    /// Panics if `widest` is zero.
    pub fn new(widest: usize) -> Self {
        assert!(widest > 0, "data background generator needs a non-zero width");
        DataBackgroundGenerator { widest }
    }

    /// IO width of the widest memory.
    pub fn widest_width(&self) -> usize {
        self.widest
    }

    /// The widest-memory pattern for a March operation of logical value
    /// `value` under `background`.
    ///
    /// Patterns are delivered once per March element, so only
    /// row-independent backgrounds (solid, column stripe, binary) are
    /// meaningful for the SPC-based scheme; the row argument is fixed to
    /// zero accordingly.
    pub fn pattern(&self, background: DataBackground, value: bool) -> DataWord {
        background.pattern_for(value, self.widest, 0)
    }

    /// The pattern as received by a memory of `width` IO bits after
    /// MSB-first delivery (the low-order bits of the wide pattern).
    pub fn pattern_for_width(&self, background: DataBackground, value: bool, width: usize) -> DataWord {
        self.pattern(background, value)
            .truncated_lsb(width.min(self.widest))
    }
}

/// The memory-size table stored in the BISD controller.
///
/// Knowing each memory's capacity and width lets the comparator tolerate
/// the redundant (wrapped-around) operations smaller memories see and
/// compare only the bits each memory actually has.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySizeTable {
    entries: BTreeMap<MemoryId, MemConfig>,
}

impl MemorySizeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MemorySizeTable {
            entries: BTreeMap::new(),
        }
    }

    /// Registers a memory.
    pub fn insert(&mut self, id: MemoryId, config: MemConfig) {
        self.entries.insert(id, config);
    }

    /// Geometry of a registered memory.
    pub fn config(&self, id: MemoryId) -> Option<MemConfig> {
        self.entries.get(&id).copied()
    }

    /// Number of registered memories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no memory is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity (words) of the largest registered memory.
    pub fn max_words(&self) -> u64 {
        self.entries.values().map(|c| c.words()).max().unwrap_or(0)
    }

    /// IO width of the widest registered memory.
    pub fn max_width(&self) -> usize {
        self.entries.values().map(|c| c.width()).max().unwrap_or(0)
    }

    /// Iterator over registered memories in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MemoryId, MemConfig)> + '_ {
        self.entries.iter().map(|(&id, &config)| (id, config))
    }
}

impl FromIterator<(MemoryId, MemConfig)> for MemorySizeTable {
    fn from_iter<T: IntoIterator<Item = (MemoryId, MemConfig)>>(iter: T) -> Self {
        MemorySizeTable {
            entries: iter.into_iter().collect(),
        }
    }
}

/// The bit-parallel kernel's precomputed stepping index: which members
/// of a population segment must actually be stepped at each *global*
/// trigger address.
///
/// Built once per segment from the members'
/// [`AccessProfile`]s: a [`AccessProfile::PristineUniform`] member
/// appears nowhere (it behaves exactly as the golden model predicts,
/// so stepping it cannot produce a record), a
/// [`AccessProfile::RowLocal`] member appears at every global address
/// whose wrapped local row is one of its deviation rows, and a
/// [`AccessProfile::Opaque`] member appears everywhere. Within one
/// address the member indices are ascending — the same order the
/// per-memory walk visits them — so records emitted from this index
/// interleave identically to the oracle's.
#[derive(Debug, Clone)]
pub struct StepIndex {
    /// `active[global]` — member indices to step, ascending.
    active: Vec<Vec<u32>>,
    /// Per member: false iff the member is skipped everywhere (the
    /// pristine fast path; such members see no operations at all).
    stepped: Vec<bool>,
}

impl StepIndex {
    /// Builds the index for a segment of members with the given access
    /// profiles and word counts, under a global trigger of `max_words`
    /// addresses (local address generators wrap, so one deviation row
    /// aliases onto every `words`-periodic global address).
    ///
    /// # Panics
    ///
    /// Panics if the profile and word-count slices differ in length, or
    /// if a profile lists a row outside its member's address space.
    pub fn new(profiles: &[AccessProfile], member_words: &[u64], max_words: u64) -> Self {
        assert_eq!(profiles.len(), member_words.len(), "one profile per member");
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); max_words as usize];
        let mut stepped = Vec::with_capacity(profiles.len());
        for (index, (profile, &words)) in profiles.iter().zip(member_words).enumerate() {
            match profile {
                AccessProfile::PristineUniform => {
                    stepped.push(false);
                }
                AccessProfile::Opaque => {
                    stepped.push(true);
                    for slot in &mut active {
                        slot.push(index as u32);
                    }
                }
                AccessProfile::RowLocal(rows) => {
                    stepped.push(true);
                    let mut local_rows = vec![false; words as usize];
                    for &row in rows {
                        assert!(row < words, "deviation row outside the member");
                        local_rows[row as usize] = true;
                    }
                    for (global, slot) in active.iter_mut().enumerate() {
                        if local_rows[global % words as usize] {
                            slot.push(index as u32);
                        }
                    }
                }
            }
        }
        StepIndex { active, stepped }
    }

    /// The members to step at `global`, ascending by member index.
    #[inline]
    pub fn members_at(&self, global: Address) -> &[u32] {
        &self.active[global.index() as usize]
    }

    /// True if the member is stepped at any address (false = the member
    /// is skipped entirely, retention pauses included — a pristine
    /// member holds no retention-faulted cells to decay).
    pub fn is_stepped(&self, member: usize) -> bool {
        self.stepped[member]
    }

    /// Number of members stepped at one or more addresses.
    pub fn stepped_count(&self) -> usize {
        self.stepped.iter().filter(|&&stepped| stepped).count()
    }
}

/// The comparator array of the BISD controller.
///
/// Each memory's serialised response is compared bit by bit against the
/// expected value; mismatches become [`DiagnosisRecord`]s in the run's
/// [`DiagnosisLog`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComparatorArray {
    log: DiagnosisLog,
}

impl ComparatorArray {
    /// Creates a comparator array with an empty log.
    pub fn new() -> Self {
        ComparatorArray {
            log: DiagnosisLog::new(),
        }
    }

    /// Compares one response against its expected value and records a
    /// diagnosis record if they differ. Returns the failing bit
    /// positions (empty when the response matches).
    ///
    /// # Panics
    ///
    /// Panics if the expected and observed widths differ.
    #[allow(clippy::too_many_arguments)]
    pub fn compare(
        &mut self,
        memory: MemoryId,
        address: Address,
        background: DataBackground,
        element: &str,
        expected: &DataWord,
        observed: &DataWord,
    ) -> FailingBits {
        let failing = expected.mismatches(observed);
        if !failing.is_empty() {
            self.log.push(DiagnosisRecord {
                memory,
                address,
                background,
                element: element.to_string(),
                expected: expected.clone(),
                observed: observed.clone(),
                failing_bits: failing.clone(),
            });
        }
        failing
    }

    /// The accumulated diagnosis log.
    pub fn log(&self) -> &DiagnosisLog {
        &self.log
    }

    /// Consumes the comparator and returns its log.
    pub fn into_log(self) -> DiagnosisLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_trigger_wraps_smaller_memories() {
        let trigger = AddressTrigger::new(8);
        assert_eq!(trigger.max_words(), 8);
        assert_eq!(trigger.ascending().count(), 8);
        assert_eq!(trigger.descending().next(), Some(Address::new(7)));
        assert_eq!(trigger.local_address(Address::new(6), 4), Address::new(2));
        assert_eq!(trigger.local_address(Address::new(3), 4), Address::new(3));
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_word_trigger_panics() {
        let _ = AddressTrigger::new(0);
    }

    #[test]
    fn background_generator_truncates_for_narrow_memories() {
        let generator = DataBackgroundGenerator::new(8);
        assert_eq!(generator.widest_width(), 8);
        let wide = generator.pattern(DataBackground::Binary(1), false);
        let narrow = generator.pattern_for_width(DataBackground::Binary(1), false, 3);
        assert_eq!(narrow, wide.truncated_lsb(3));
        let inverted = generator.pattern(DataBackground::Solid, true);
        assert_eq!(inverted, DataWord::splat(true, 8));
    }

    #[test]
    fn size_table_reports_population_extremes() {
        let table: MemorySizeTable = vec![
            (MemoryId::new(0), MemConfig::new(512, 100).unwrap()),
            (MemoryId::new(1), MemConfig::new(64, 16).unwrap()),
        ]
        .into_iter()
        .collect();
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        assert_eq!(table.max_words(), 512);
        assert_eq!(table.max_width(), 100);
        assert_eq!(table.config(MemoryId::new(1)).unwrap().words(), 64);
        assert!(table.config(MemoryId::new(9)).is_none());
        assert_eq!(table.iter().count(), 2);
        assert_eq!(MemorySizeTable::new().max_words(), 0);
    }

    #[test]
    fn step_index_aliases_rows_through_the_wrap_and_orders_members() {
        // Member 0: opaque, 8 words. Member 1: row-local {3}, 8 words —
        // aliases onto globals 3, 11, 19, 27. Member 2: pristine.
        // Member 3: row-local {0}, 4 words — aliases onto every 4th.
        let profiles = [
            AccessProfile::Opaque,
            AccessProfile::RowLocal(vec![3]),
            AccessProfile::PristineUniform,
            AccessProfile::RowLocal(vec![0]),
        ];
        let index = StepIndex::new(&profiles, &[32, 8, 16, 4], 32);
        assert_eq!(index.members_at(Address::new(3)), &[0, 1]);
        assert_eq!(index.members_at(Address::new(11)), &[0, 1]);
        assert_eq!(index.members_at(Address::new(4)), &[0, 3]);
        assert_eq!(index.members_at(Address::new(0)), &[0, 3]);
        assert_eq!(index.members_at(Address::new(1)), &[0]);
        assert!(index.is_stepped(0) && index.is_stepped(1) && index.is_stepped(3));
        assert!(!index.is_stepped(2));
        assert_eq!(index.stepped_count(), 3);
    }

    #[test]
    fn all_pristine_step_index_is_empty_everywhere() {
        let profiles = [AccessProfile::PristineUniform, AccessProfile::PristineUniform];
        let index = StepIndex::new(&profiles, &[8, 4], 8);
        for global in 0..8 {
            assert!(index.members_at(Address::new(global)).is_empty());
        }
        assert_eq!(index.stepped_count(), 0);
    }

    #[test]
    #[should_panic(expected = "deviation row outside")]
    fn step_index_rejects_out_of_range_rows() {
        let _ = StepIndex::new(&[AccessProfile::RowLocal(vec![9])], &[8], 16);
    }

    #[test]
    fn comparator_records_only_mismatches() {
        let mut comparator = ComparatorArray::new();
        let expected = DataWord::zero(4);
        let good = DataWord::zero(4);
        let bad = DataWord::from_u64(0b0100, 4);
        assert!(comparator
            .compare(
                MemoryId::new(0),
                Address::new(1),
                DataBackground::Solid,
                "M1",
                &expected,
                &good
            )
            .is_empty());
        let failing = comparator.compare(
            MemoryId::new(0),
            Address::new(2),
            DataBackground::Solid,
            "M2",
            &expected,
            &bad,
        );
        assert_eq!(failing, vec![2]);
        assert_eq!(comparator.log().len(), 1);
        let log = comparator.into_log();
        assert_eq!(log.records()[0].element, "M2");
    }
}
