//! F6 and the DRF half of E4: NWRTM versus pause-based data-retention
//! diagnosis — same coverage, three orders of magnitude apart in time.

use bench::{drf_population, print_section};
use criterion::{criterion_group, criterion_main, Criterion};
use esram_diag::{DiagnosisScheme, DrfMode, FastScheme, FaultClass, HuangScheme};
use std::hint::black_box;
use std::time::Duration;

fn print_drf_comparison() {
    print_section("F6 / E4: data-retention fault diagnosis — NWRTM vs retention pauses");
    println!(
        "{:<46} {:>12} {:>12} {:>10} {:>10}",
        "configuration", "time (ms)", "pause (ms)", "DRF cov", "located"
    );

    let mut rows = Vec::new();
    {
        let mut soc = drf_population(2, 64, 16, 0.02, 7);
        let result = HuangScheme::new(10.0)
            .diagnose(soc.memories_mut())
            .expect("baseline");
        let score = soc.score(&result);
        rows.push(("baseline [7,8] (no DRF diagnosis)", result, score));
    }
    {
        let mut soc = drf_population(2, 64, 16, 0.02, 7);
        let result = HuangScheme::new(10.0)
            .with_retention_pause(100)
            .diagnose(soc.memories_mut())
            .expect("baseline+pause");
        let score = soc.score(&result);
        rows.push(("baseline [7,8] + 2x100 ms pauses", result, score));
    }
    {
        let mut soc = drf_population(2, 64, 16, 0.02, 7);
        let result = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::RetentionPause(100))
            .diagnose(soc.memories_mut())
            .expect("fast+pause");
        let score = soc.score(&result);
        rows.push(("proposed + 2x100 ms pauses", result, score));
    }
    {
        let mut soc = drf_population(2, 64, 16, 0.02, 7);
        let result = FastScheme::new(10.0)
            .diagnose(soc.memories_mut())
            .expect("fast+nwrtm");
        let score = soc.score(&result);
        rows.push(("proposed + NWRTM (paper)", result, score));
    }

    for (label, result, score) in &rows {
        println!(
            "{:<46} {:>12.3} {:>12.1} {:>9.0}% {:>10}",
            label,
            result.time_ms(),
            result.pause_ms,
            score.class_coverage(FaultClass::DataRetention) * 100.0,
            result.located_count()
        );
    }
    println!(
        "\npaper claim: NWRTM reaches full DRF coverage with ~2 extra operations per address and no pause"
    );
}

fn bench_drf(c: &mut Criterion) {
    print_drf_comparison();

    let mut group = c.benchmark_group("drf_diagnosis");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    group.bench_function("nwrtm_diagnosis_2x64x16", |b| {
        b.iter_batched(
            || drf_population(2, 64, 16, 0.02, 7),
            |mut soc| {
                black_box(
                    FastScheme::new(10.0)
                        .diagnose(soc.memories_mut())
                        .expect("run")
                        .cycles,
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("no_drf_diagnosis_2x64x16", |b| {
        b.iter_batched(
            || drf_population(2, 64, 16, 0.02, 7),
            |mut soc| {
                black_box(
                    FastScheme::new(10.0)
                        .with_drf_mode(DrfMode::None)
                        .diagnose(soc.memories_mut())
                        .expect("run")
                        .cycles,
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_drf);
criterion_main!(benches);
