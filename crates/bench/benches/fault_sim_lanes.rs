//! P2: lane-parallel fault simulation — the 64-lane kernel against the
//! frozen per-memory kernel.
//!
//! Comparator roles:
//!
//! * `*_lanes` — the current library path: [`FaultSimKernel::Lanes`],
//!   which packs up to 64 compatible faults into the bit lanes of a
//!   `u64` and replays each march schedule once per batch over the
//!   union of the batch's pruned rows.
//! * `*_permem` — the PR 9 architecture, frozen behind the
//!   [`FaultSimKernel::PerMemory`] knob: one pruned `Sram` replay per
//!   fault. This is the equivalence oracle, not a strawman — identical
//!   sharding, pruning and golden-run gating, differing only in the
//!   kernel.
//!
//! Both kernels must agree on detections; the printed table reports the
//! speedups (acceptance bar: >= 4x at benchmark scale, single thread).
//! These entries feed the CI perf gate (`perf_gate --strict --prefix
//! fault_sim_lanes/`). When refreshing the committed ledger, run with
//! `ESRAM_DIAG_THREADS=1` (as CI's gate run does) so the entries do not
//! encode the recording machine's core count.

use bench::print_section;
use criterion::{criterion_group, criterion_main, Criterion};
use fault_models::{DefectProfile, FaultInjector, FaultList, FaultUniverse};
use march::{algorithms, FaultSimKernel, FaultSimulator, MarchSchedule};
use sram_model::MemConfig;
use std::hint::black_box;
use std::time::Instant;
use testutil::{benchmark_geometry, SEEDS};

/// Detections under the given kernel — the measured unit of work.
fn simulate(sim: &FaultSimulator, schedule: &MarchSchedule, universe: &FaultList) -> usize {
    sim.simulate_universe(schedule, universe)
        .iter()
        .filter(|outcome| outcome.detected)
        .count()
}

fn kernel_sim(config: MemConfig, kernel: FaultSimKernel) -> FaultSimulator {
    FaultSimulator::new(config).with_kernel(kernel)
}

/// The benchmark-scale workload: the leading slice of the exhaustive
/// stuck-at universe at the paper's 512 × 100 geometry. This is the
/// shape the Sec. 4.1 coverage evaluation simulates — row-major, 200
/// faults per row — so consecutive 64-lane batches collapse onto one or
/// two distinct rows and the per-memory kernel's per-fault reset and
/// replay are amortised 64 ways.
fn coverage_slice(config: MemConfig, count: usize) -> FaultList {
    FaultUniverse::new(config)
        .stuck_at()
        .iter()
        .take(count)
        .copied()
        .collect()
}

/// The Sec. 4.2 defect-rate sweep point: the paper's 1 % defect rate
/// over the benchmark geometry, drawing from all four baseline defect
/// classes — so coupling batches, lane batches and full-sweep decoder
/// singles (which no kernel can batch) are all exercised.
fn defect_rate_point(config: MemConfig) -> FaultList {
    FaultInjector::with_seed(SEEDS[2]).generate(config, &DefectProfile::date2005(0.01))
}

/// Wall-clock of one run (minimum of five — the same statistic the
/// perf-gate ledger compares), for the printed table.
fn time_ms(mut run: impl FnMut() -> usize) -> (usize, f64) {
    let mut best = f64::MAX;
    let mut result = 0;
    for _ in 0..5 {
        let start = Instant::now();
        result = black_box(run());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (result, best)
}

fn print_lanes_table() {
    print_section("P2: lane-parallel fault simulation — 64-lane kernel vs frozen per-memory kernel");

    let config = benchmark_geometry();
    let schedule = algorithms::march_cw(config.width());
    let universe = coverage_slice(config, 8192);
    let lanes = kernel_sim(config, FaultSimKernel::Lanes);
    let permem = kernel_sim(config, FaultSimKernel::PerMemory);

    let (lanes_detected, lanes_ms) = time_ms(|| simulate(&lanes, &schedule, &universe));
    let (permem_detected, permem_ms) = time_ms(|| simulate(&permem, &schedule, &universe));
    assert_eq!(
        lanes_detected, permem_detected,
        "lane and per-memory kernels must agree on detections"
    );
    println!(
        "benchmark scale ({config}, {} faults, March CW): lanes {lanes_ms:.3} ms, \
         per-memory {permem_ms:.3} ms, speedup {:.1}x (acceptance bar >= 4x at 1 thread)",
        universe.len(),
        permem_ms / lanes_ms
    );

    let sweep_universe = defect_rate_point(config);
    let (sweep_lanes_detected, sweep_lanes_ms) = time_ms(|| simulate(&lanes, &schedule, &sweep_universe));
    let (sweep_permem_detected, sweep_permem_ms) = time_ms(|| simulate(&permem, &schedule, &sweep_universe));
    assert_eq!(
        sweep_lanes_detected, sweep_permem_detected,
        "kernels must agree on the defect-rate sweep point"
    );
    println!(
        "defect-rate point ({config}, 1% date2005 profile, {} faults): lanes {sweep_lanes_ms:.3} ms, \
         per-memory {sweep_permem_ms:.3} ms, speedup {:.1}x",
        sweep_universe.len(),
        sweep_permem_ms / sweep_lanes_ms
    );
}

fn bench_lanes(c: &mut Criterion) {
    print_lanes_table();

    let mut group = c.benchmark_group("fault_sim_lanes");
    group.sample_size(10);

    let config = benchmark_geometry();
    let schedule = algorithms::march_cw(config.width());
    let universe = coverage_slice(config, 8192);
    let lanes = kernel_sim(config, FaultSimKernel::Lanes);
    let permem = kernel_sim(config, FaultSimKernel::PerMemory);
    group.bench_function("benchmark_scale_lanes", |b| {
        b.iter(|| black_box(simulate(&lanes, &schedule, &universe)))
    });
    group.bench_function("benchmark_scale_permem", |b| {
        b.iter(|| black_box(simulate(&permem, &schedule, &universe)))
    });

    let sweep_universe = defect_rate_point(config);
    group.bench_function("defect_rate_point_lanes", |b| {
        b.iter(|| black_box(simulate(&lanes, &schedule, &sweep_universe)))
    });
    group.bench_function("defect_rate_point_permem", |b| {
        b.iter(|| black_box(simulate(&permem, &schedule, &sweep_universe)))
    });
    group.finish();
}

criterion_group!(benches, bench_lanes);
criterion_main!(benches);
