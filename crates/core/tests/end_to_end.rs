//! End-to-end integration tests spanning every crate: SoC construction,
//! defect injection, diagnosis with both schemes, scoring and repair.

use esram_diag::{
    AnalyticModel, CaseStudy, DiagnosisScheme, DrfMode, FastScheme, FaultClass, HuangScheme, Soc,
};

/// Builds the same defective population twice (same seed) so both
/// schemes can be compared on identical ground truth.
fn defective_soc(seed: u64) -> Soc {
    Soc::builder()
        .memories(4, 64, 16)
        .unwrap()
        .memory(32, 8)
        .unwrap()
        .defect_rate(0.01)
        .seed(seed)
        .spares(16)
        .build()
        .unwrap()
}

#[test]
fn proposed_scheme_is_faster_and_at_least_as_accurate_as_the_baseline() {
    let mut baseline_soc = defective_soc(500);
    let mut fast_soc = defective_soc(500);
    assert_eq!(baseline_soc.injected_faults(), fast_soc.injected_faults());

    let baseline = HuangScheme::new(10.0)
        .diagnose(baseline_soc.memories_mut())
        .unwrap();
    let fast = FastScheme::new(10.0).diagnose(fast_soc.memories_mut()).unwrap();

    // The headline result: the proposed scheme wins, by a large factor,
    // on the same defect population.
    let reduction = fast.speedup_versus(&baseline);
    assert!(
        reduction > 5.0,
        "simulated reduction factor too small: {reduction}"
    );
    assert_eq!(fast.iterations, 1);
    assert!(baseline.iterations >= 1);

    // And it locates at least as many of the injected faults.
    let baseline_score = baseline_soc.score(&baseline);
    let fast_score = fast_soc.score(&fast);
    assert!(fast_score.location_coverage() >= baseline_score.location_coverage());
}

#[test]
fn reduction_factor_grows_with_the_defect_rate() {
    let mut reductions = Vec::new();
    for (seed, rate) in [(1u64, 0.005), (1, 0.02)] {
        let build = || {
            Soc::builder()
                .memories(2, 64, 16)
                .unwrap()
                .defect_rate(rate)
                .seed(seed)
                .build()
                .unwrap()
        };
        let mut baseline_soc = build();
        let mut fast_soc = build();
        let baseline = HuangScheme::new(10.0)
            .diagnose(baseline_soc.memories_mut())
            .unwrap();
        let fast = FastScheme::new(10.0).diagnose(fast_soc.memories_mut()).unwrap();
        reductions.push(fast.speedup_versus(&baseline));
    }
    assert!(
        reductions[1] > reductions[0],
        "higher defect rate must favour the proposed scheme more: {reductions:?}"
    );
}

#[test]
fn drf_coverage_is_the_decisive_difference_between_the_schemes() {
    let build = || {
        Soc::builder()
            .memories(2, 32, 8)
            .unwrap()
            .defect_rate(0.05)
            .with_data_retention_defects()
            .seed(9)
            .build()
            .unwrap()
    };

    let mut baseline_soc = build();
    let baseline = HuangScheme::new(10.0)
        .diagnose(baseline_soc.memories_mut())
        .unwrap();
    let baseline_score = baseline_soc.score(&baseline);

    let mut fast_soc = build();
    let fast = FastScheme::new(10.0).diagnose(fast_soc.memories_mut()).unwrap();
    let fast_score = fast_soc.score(&fast);

    // The population contains DRFs (seeded); the baseline misses all of
    // them while NWRTM finds them.
    assert!(baseline_score
        .injected_by_class
        .contains_key(&FaultClass::DataRetention));
    assert_eq!(baseline_score.class_coverage(FaultClass::DataRetention), 0.0);
    assert_eq!(fast_score.class_coverage(FaultClass::DataRetention), 1.0);
    assert_eq!(fast.pause_ms, 0.0, "NWRTM must not pause");
}

#[test]
fn pause_based_drf_testing_costs_hundreds_of_milliseconds_nwrtm_does_not() {
    let build = || {
        Soc::builder()
            .memories(1, 32, 8)
            .unwrap()
            .defect_rate(0.02)
            .with_data_retention_defects()
            .seed(3)
            .build()
            .unwrap()
    };
    let mut pause_soc = build();
    let paused = FastScheme::new(10.0)
        .with_drf_mode(DrfMode::RetentionPause(100))
        .diagnose(pause_soc.memories_mut())
        .unwrap();
    let mut nwrtm_soc = build();
    let nwrtm = FastScheme::new(10.0).diagnose(nwrtm_soc.memories_mut()).unwrap();

    assert!(paused.time_ms() >= 200.0);
    assert!(nwrtm.time_ms() < 10.0);
    // Both locate the same DRFs.
    assert_eq!(
        pause_soc.score(&paused).class_coverage(FaultClass::DataRetention),
        nwrtm_soc.score(&nwrtm).class_coverage(FaultClass::DataRetention)
    );
}

#[test]
fn repair_consumes_spares_and_clears_located_addresses() {
    let mut soc = defective_soc(77);
    let result = FastScheme::new(10.0).diagnose(soc.memories_mut()).unwrap();
    assert!(!result.is_clean());
    let unrepaired = soc.repair_from(&result);
    assert_eq!(
        unrepaired, 0,
        "16 spares per memory must suffice at a 1 % defect rate"
    );
    for memory in soc.memories() {
        for address in result.failing_addresses(memory.id) {
            assert!(memory.backup.is_repaired(address));
        }
    }
}

#[test]
fn simulated_fast_scheme_cycles_match_the_analytic_model_for_the_benchmark_geometry() {
    // Single benchmark-sized memory, no defects, no DRF pass: the
    // simulated cycle count must equal Eq. (2) exactly.
    let mut soc = Soc::builder().memory(512, 100).unwrap().build().unwrap();
    let result = FastScheme::new(10.0)
        .with_drf_mode(DrfMode::None)
        .diagnose(soc.memories_mut())
        .unwrap();
    let analytic = AnalyticModel::date2005_benchmark();
    assert_eq!(result.cycles, analytic.proposed_cycles());
    assert!((result.time_ms() - analytic.proposed_time().total_ms()).abs() < 1e-9);
}

#[test]
fn analytic_case_study_and_simulation_agree_on_the_winner_everywhere() {
    let report = CaseStudy::date2005().evaluate();
    assert!(report.reduction_without_drf > 1.0);
    assert!(report.reduction_with_drf > report.reduction_without_drf);

    // Simulated small-scale analogue: same ordering.
    let mut baseline_soc = defective_soc(123);
    let mut fast_soc = defective_soc(123);
    let baseline = HuangScheme::new(10.0)
        .diagnose(baseline_soc.memories_mut())
        .unwrap();
    let fast = FastScheme::new(10.0).diagnose(fast_soc.memories_mut()).unwrap();
    assert!(fast.time_ns() < baseline.time_ns());
}

#[test]
fn heterogeneous_population_with_wrapping_small_memories_diagnoses_cleanly() {
    // Pristine population whose smallest memory wraps many times while
    // the largest is swept: no false positives from either scheme.
    let mut soc = Soc::builder()
        .memory(256, 20)
        .unwrap()
        .memory(16, 4)
        .unwrap()
        .memory(8, 3)
        .unwrap()
        .build()
        .unwrap();
    let fast = FastScheme::new(10.0).diagnose(soc.memories_mut()).unwrap();
    assert!(fast.is_clean());
    let mut soc2 = Soc::builder()
        .memory(256, 20)
        .unwrap()
        .memory(16, 4)
        .unwrap()
        .memory(8, 3)
        .unwrap()
        .build()
        .unwrap();
    let baseline = HuangScheme::new(10.0).diagnose(soc2.memories_mut()).unwrap();
    assert!(baseline.is_clean());
}
