//! Benchmark-scale defect-rate sweep (ROADMAP item): the analytic sweep
//! (`esram_diag::defect_rate_sweep`) models the baseline's iteration
//! count with the paper's `k = ⌈0.75·F/2⌉` estimate; with the packed +
//! sharded core, both schemes can now be *simulated* end to end at the
//! paper's 512 × 100 geometry across the full rate grid, so the
//! estimate is checked against simulated behaviour at every rate:
//!
//! * the fast scheme locates every injected fault in one pass, with an
//!   Eq.-(2) cycle count that is byte-identical across all rates
//!   (defect-count independence at benchmark scale);
//! * the baseline's simulated `M1` iteration count tracks the paper's
//!   `k` estimate (same linear-in-F regime) and its cycle count matches
//!   Eq. (1) exactly at the simulated `k`;
//! * the simulated reduction factor grows with the defect rate, as the
//!   analytic sweep's monotone `R` curve predicts.
//!
//! Kept `#[ignore]` so the default debug run stays fast; CI's release
//! job executes it with `cargo test --release -- --ignored`.

use esram_diag::{
    defect_rate_sweep, AnalyticModel, DiagnosisScheme, DrfMode, FastScheme, FaultSimKernel, HuangScheme,
    MemoryId, MemoryUnderDiagnosis,
};
use fault_models::{DefectProfile, FaultInjector};
use march::{algorithms, FaultSimulator};
use testutil::{stuck_at_population, SEEDS};

const CLOCK_NS: f64 = 10.0;

/// The full rate grid of the benchmark sweep (the analytic S1 bench
/// sweeps the same points).
const RATE_GRID: [f64; 7] = [0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.1];

fn defective(defects: usize, seed: u64) -> Vec<MemoryUnderDiagnosis> {
    let config = testutil::benchmark_geometry();
    let faults = stuck_at_population(config, defects, seed);
    vec![MemoryUnderDiagnosis::with_faults(MemoryId::new(0), config, faults).expect("injects")]
}

#[test]
#[ignore = "benchmark-scale: run in release mode (CI release job, --ignored)"]
fn benchmark_scale_defect_rate_sweep_tracks_the_paper_k_estimate() {
    let model = AnalyticModel::date2005_benchmark();
    let analytic = defect_rate_sweep(&model, &RATE_GRID);
    assert_eq!(analytic.len(), RATE_GRID.len());

    let mut previous_reduction = 0.0f64;
    let mut fast_cycles_at_first_rate = None;
    for (point, &rate) in analytic.iter().zip(RATE_GRID.iter()) {
        let faults = model.max_faults_for_defect_rate(rate) as usize;
        assert_eq!(
            point.faults, faults as u64,
            "analytic row disagrees on F at rate {rate}"
        );
        let k_paper = AnalyticModel::iterations_for_faults(faults as u64).max(1);
        assert_eq!(
            point.iterations, k_paper,
            "analytic row disagrees on k at rate {rate}"
        );

        // Simulate the fast scheme: every fault located in one pass,
        // Eq. (2) exactly, independent of the rate.
        let mut fast_memories = defective(faults, SEEDS[2]);
        let fast = FastScheme::new(CLOCK_NS)
            .with_drf_mode(DrfMode::None)
            .diagnose(&mut fast_memories)
            .expect("fast scheme runs at benchmark scale");
        assert_eq!(fast.iterations, 1, "the fast scheme never iterates (rate {rate})");
        assert_eq!(
            fast.cycles,
            model.proposed_cycles(),
            "Eq. (2) must hold exactly at rate {rate}"
        );
        let located = fast.sites(MemoryId::new(0)).len();
        assert_eq!(
            located, faults,
            "the fast scheme must locate all {faults} injected faults at rate {rate}"
        );
        if let Some(first) = fast_cycles_at_first_rate {
            assert_eq!(
                fast.cycles, first,
                "fast-scheme time must be defect-count independent"
            );
        } else {
            fast_cycles_at_first_rate = Some(fast.cycles);
        }

        // Simulate the baseline: Eq. (1) holds at the *simulated* k,
        // every fault is located, and the simulated iteration count
        // tracks the paper's ⌈0.75·F/2⌉ estimate — same linear-in-F
        // regime, within a factor-of-two band (the estimate assumes
        // 0.75 locations per address pass; the simulated interface
        // locates up to two per shift direction).
        let mut huang_memories = defective(faults, SEEDS[2]);
        let huang = HuangScheme::new(CLOCK_NS)
            .diagnose(&mut huang_memories)
            .expect("baseline runs at benchmark scale");
        assert_eq!(
            huang.cycles,
            model.baseline_cycles(huang.iterations),
            "Eq. (1) must hold exactly at the simulated k (rate {rate})"
        );
        assert_eq!(
            huang.sites(MemoryId::new(0)).len(),
            faults,
            "the baseline must locate all {faults} injected faults at rate {rate}"
        );
        let ratio = huang.iterations as f64 / k_paper as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "simulated k = {} must track the paper's estimate k = {k_paper} at rate {rate} \
             (ratio {ratio:.2})",
            huang.iterations
        );

        // The simulated reduction factor reproduces the analytic sweep's
        // monotone growth with the defect rate.
        let reduction = huang.cycles as f64 / fast.cycles as f64;
        assert!(
            reduction > previous_reduction,
            "simulated R = {reduction:.1} must grow with the defect rate (was {previous_reduction:.1})"
        );
        assert!(
            point.reduction_without_drf > 0.0 && reduction > 0.0,
            "both reduction factors must be positive at rate {rate}"
        );
        previous_reduction = reduction;
    }
}

/// The sweep's March-level fault simulation under the default lane
/// kernel must be indistinguishable — outcome for outcome, failure
/// record for failure record — from the frozen per-memory oracle at
/// every rate of the grid. This is the defect-rate-sweep edge of the
/// lane-kernel equivalence contract: the property suite proves it on
/// random universes, this test pins it on the exact benchmark-scale
/// populations the sweep simulates.
#[test]
#[ignore = "benchmark-scale: run in release mode (CI release job, --ignored)"]
fn benchmark_scale_sweep_universes_agree_across_fault_sim_kernels() {
    let config = testutil::benchmark_geometry();
    let schedule = algorithms::march_cw(config.width());
    let lanes = FaultSimulator::new(config).with_kernel(FaultSimKernel::Lanes);
    let permem = FaultSimulator::new(config).with_kernel(FaultSimKernel::PerMemory);
    for &rate in &RATE_GRID {
        let universe = FaultInjector::with_seed(SEEDS[2]).generate(config, &DefectProfile::date2005(rate));
        let lane_outcomes = lanes.simulate_universe(&schedule, &universe);
        let permem_outcomes = permem.simulate_universe(&schedule, &universe);
        assert_eq!(
            lane_outcomes, permem_outcomes,
            "lane and per-memory kernels disagree on the rate-{rate} sweep universe"
        );
    }
}
