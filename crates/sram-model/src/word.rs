//! Arbitrary-width data words and standard memory-test data backgrounds.

use crate::error::MemError;
use std::fmt;

/// An arbitrary-width binary word, bit 0 being the least significant bit.
///
/// The benchmark e-SRAM of the paper is 100 bits wide, so a fixed-size
/// integer is not sufficient; `DataWord` stores its bits in 64-bit limbs
/// and carries its width explicitly. Widths of co-existing memories may
/// differ (the paper's SPC discussion uses `c = 4` and `c' = 3`), so all
/// port operations validate widths at run time.
#[derive(Debug)]
pub struct DataWord {
    width: usize,
    limbs: LimbBuf,
}

/// Number of limbs stored inline (words up to 128 bits — including the
/// paper's 100-bit benchmark width — never touch the heap).
const INLINE_LIMBS: usize = 2;

/// Limb storage: a fixed inline array for widths up to
/// `64 * INLINE_LIMBS` bits, a heap vector beyond. The variant is fully
/// determined by the width (constructors enforce it), so equality can
/// compare limb slices directly.
#[derive(Debug, Clone)]
enum LimbBuf {
    /// Widths `1..=128`; limbs beyond the word's limb count stay zero.
    Inline([u64; INLINE_LIMBS]),
    /// Widths above 128 bits.
    Heap(Vec<u64>),
}

/// Mask selecting the valid bits of the top (most significant) limb of a
/// word of `width` bits.
pub(crate) fn top_limb_mask(width: usize) -> u64 {
    match width % 64 {
        0 => u64::MAX,
        rem => (1u64 << rem) - 1,
    }
}

impl Clone for DataWord {
    #[inline]
    fn clone(&self) -> Self {
        DataWord {
            width: self.width,
            limbs: self.limbs.clone(),
        }
    }

    #[inline]
    fn clone_from(&mut self, source: &Self) {
        // Keep hot paths (sense-amp state updates, golden-word
        // maintenance) allocation-free: inline buffers are plain copies
        // and `Vec::clone_from` reuses the heap allocation.
        self.width = source.width;
        match (&mut self.limbs, &source.limbs) {
            (LimbBuf::Inline(dst), LimbBuf::Inline(src)) => *dst = *src,
            (LimbBuf::Heap(dst), LimbBuf::Heap(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl PartialEq for DataWord {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.limbs() == other.limbs()
    }
}

impl Eq for DataWord {}

impl std::hash::Hash for DataWord {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.width.hash(state);
        self.limbs().hash(state);
    }
}

impl DataWord {
    fn limb_count(width: usize) -> usize {
        width.div_ceil(64)
    }

    /// Creates an all-zero word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[inline]
    pub fn zero(width: usize) -> Self {
        assert!(width > 0, "data word width must be non-zero");
        let limbs = if width <= 64 * INLINE_LIMBS {
            LimbBuf::Inline([0; INLINE_LIMBS])
        } else {
            LimbBuf::Heap(vec![0u64; DataWord::limb_count(width)])
        };
        DataWord { width, limbs }
    }

    /// Creates a word of the given width with every bit set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn splat(value: bool, width: usize) -> Self {
        let mut word = DataWord::zero(width);
        if value {
            let limbs = word.limbs_mut();
            for limb in limbs.iter_mut() {
                *limb = u64::MAX;
            }
            let last = limbs.len() - 1;
            limbs[last] &= top_limb_mask(width);
        }
        word
    }

    /// Creates a word directly from its 64-bit limbs (LSB limb first).
    ///
    /// Bits of the top limb beyond `width` are masked off so that words
    /// built from limbs compare equal to words built bit by bit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `limbs.len() != width.div_ceil(64)`.
    pub fn from_limbs(width: usize, limbs: Vec<u64>) -> Self {
        assert!(width > 0, "data word width must be non-zero");
        assert_eq!(
            limbs.len(),
            DataWord::limb_count(width),
            "limb count must match width"
        );
        let mut word = DataWord::zero(width);
        word.copy_limbs_from(&limbs);
        word
    }

    /// Overwrites the word's limbs from a slice of the same limb count,
    /// masking the top limb. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len() != width.div_ceil(64)`.
    #[inline]
    pub fn copy_limbs_from(&mut self, limbs: &[u64]) {
        let width = self.width;
        let dst = self.limbs_mut();
        dst.copy_from_slice(limbs);
        let last = dst.len() - 1;
        dst[last] &= top_limb_mask(width);
    }

    /// Builds a word of `width <= 128` directly from its (already
    /// masked) inline limbs — the zero-cost constructor the packed
    /// planes use on the read hot path.
    ///
    /// Callers must guarantee that bits beyond `width` are zero.
    #[inline]
    pub(crate) fn from_inline_limbs(width: usize, limbs: [u64; INLINE_LIMBS]) -> Self {
        debug_assert!(width > 0 && width <= 64 * INLINE_LIMBS);
        debug_assert!(
            {
                let mut canonical = limbs;
                if width <= 64 {
                    canonical[1] = 0;
                }
                canonical[DataWord::limb_count(width) - 1] &= top_limb_mask(width);
                canonical == limbs
            },
            "from_inline_limbs requires masked limbs"
        );
        DataWord {
            width,
            limbs: LimbBuf::Inline(limbs),
        }
    }

    /// Overwrites an inline word's limbs from an (already masked) limb
    /// pair — the allocation- and loop-free sibling of
    /// [`DataWord::copy_limbs_from`] used on the packed read hot path.
    ///
    /// Callers must guarantee `width <= 128` and masked input limbs.
    #[inline]
    pub(crate) fn set_inline_limbs(&mut self, limbs: [u64; INLINE_LIMBS]) {
        debug_assert!(self.width <= 64 * INLINE_LIMBS);
        match &mut self.limbs {
            LimbBuf::Inline(dst) => *dst = limbs,
            LimbBuf::Heap(_) => unreachable!("inline limbs on a heap word"),
        }
    }

    /// The 64-bit limbs backing the word, LSB limb first. Bits beyond
    /// `width` in the top limb are always zero.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        let count = DataWord::limb_count(self.width);
        match &self.limbs {
            LimbBuf::Inline(limbs) => &limbs[..count],
            LimbBuf::Heap(limbs) => limbs,
        }
    }

    #[inline]
    fn limbs_mut(&mut self) -> &mut [u64] {
        let count = DataWord::limb_count(self.width);
        match &mut self.limbs {
            LimbBuf::Inline(limbs) => &mut limbs[..count],
            LimbBuf::Heap(limbs) => limbs,
        }
    }

    /// Creates a word from an iterator of bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn from_bits_lsb_first<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        assert!(!bits.is_empty(), "data word must have at least one bit");
        let mut word = DataWord::zero(bits.len());
        for (index, bit) in bits.iter().enumerate() {
            word.set(index, *bit);
        }
        word
    }

    /// Creates a word of width `width` from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width > 0 && width <= 64, "from_u64 supports widths 1..=64");
        let mut word = DataWord::zero(width);
        for bit in 0..width {
            word.set(bit, (value >> bit) & 1 == 1);
        }
        word
    }

    /// Checkerboard background: bit `i` of word at row `row` is
    /// `(i + row) % 2 == 0` inverted or not depending on `inverted`.
    ///
    /// Checkerboard backgrounds are part of the DiagRSMarch extension in
    /// the baseline scheme and of March CW's multiple data backgrounds.
    pub fn checkerboard(width: usize, row: u64, inverted: bool) -> Self {
        let mut word = DataWord::zero(width);
        for bit in 0..width {
            let phase = (bit as u64 + row).is_multiple_of(2);
            word.set(bit, phase ^ inverted);
        }
        word
    }

    /// Column-stripe background: even bit positions carry `!inverted`,
    /// odd positions carry `inverted`, independent of the row.
    pub fn column_stripe(width: usize, inverted: bool) -> Self {
        let mut word = DataWord::zero(width);
        for bit in 0..width {
            word.set(bit, (bit % 2 == 0) ^ inverted);
        }
        word
    }

    /// Row-stripe background: the whole word is `row % 2 == 0` XOR `inverted`.
    pub fn row_stripe(width: usize, row: u64, inverted: bool) -> Self {
        DataWord::splat(row.is_multiple_of(2) ^ inverted, width)
    }

    /// Width of the word in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns bit `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn bit(&self, index: usize) -> bool {
        assert!(
            index < self.width,
            "bit index {index} out of range for width {}",
            self.width
        );
        (self.limbs()[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Fallible accessor for bit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BitOutOfRange`] if `index >= width`.
    pub fn try_bit(&self, index: usize) -> Result<bool, MemError> {
        if index < self.width {
            Ok(self.bit(index))
        } else {
            Err(MemError::BitOutOfRange {
                bit: index,
                width: self.width,
            })
        }
    }

    /// Sets bit `index` (LSB = 0) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.width,
            "bit index {index} out of range for width {}",
            self.width
        );
        let limb = &mut self.limbs_mut()[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Returns a copy with every bit inverted.
    pub fn inverted(&self) -> Self {
        let mut out = self.clone();
        let width = self.width;
        let limbs = out.limbs_mut();
        for limb in limbs.iter_mut() {
            *limb = !*limb;
        }
        let last = limbs.len() - 1;
        limbs[last] &= top_limb_mask(width);
        out
    }

    /// Bitwise XOR with another word of the same width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor(&self, other: &DataWord) -> DataWord {
        assert_eq!(self.width, other.width, "xor requires equal widths");
        let mut out = self.clone();
        for (limb, o) in out.limbs_mut().iter_mut().zip(other.limbs()) {
            *limb ^= o;
        }
        out
    }

    /// Bitwise AND with another word of the same width, in place.
    ///
    /// This is the wired-AND the precharged bitlines compute when a
    /// decoder fault activates several rows at once.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[inline]
    pub fn and_assign(&mut self, other: &DataWord) {
        assert_eq!(self.width, other.width, "and_assign requires equal widths");
        for (limb, o) in self.limbs_mut().iter_mut().zip(other.limbs()) {
            *limb &= o;
        }
    }

    /// Indices of bits set to one.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (index, &limb) in self.limbs().iter().enumerate() {
            let mut rest = limb;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                out.push(index * 64 + bit);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Number of bits set to one.
    pub fn count_ones(&self) -> usize {
        self.limbs().iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Returns the bit positions where `self` and `other` differ.
    ///
    /// This is what the BISD comparator array computes per memory: the
    /// failing bit positions of a response against the expected value.
    ///
    /// Allocation-free when at most [`FailingBits::INLINE`] bits differ
    /// — which covers agreement and the typical one- or two-bit fault
    /// signature on the fault-simulation hot path.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[inline]
    pub fn mismatches(&self, other: &DataWord) -> FailingBits {
        assert_eq!(self.width, other.width, "mismatches requires equal widths");
        let mut out = FailingBits::new();
        for (index, (a, b)) in self.limbs().iter().zip(other.limbs()).enumerate() {
            let mut diff = a ^ b;
            while diff != 0 {
                out.push(index * 64 + diff.trailing_zeros() as usize);
                diff &= diff - 1;
            }
        }
        out
    }

    /// Bits of the word, LSB first.
    pub fn bits_lsb_first(&self) -> Vec<bool> {
        (0..self.width).map(|b| self.bit(b)).collect()
    }

    /// Bits of the word, MSB first.
    ///
    /// The paper's SPC delivers patterns MSB first (Sec. 3.2) so that
    /// narrower memories receive the correct low-order background bits.
    pub fn bits_msb_first(&self) -> Vec<bool> {
        (0..self.width).rev().map(|b| self.bit(b)).collect()
    }

    /// Truncates the word to its `new_width` least significant bits.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero or greater than the current width.
    pub fn truncated_lsb(&self, new_width: usize) -> DataWord {
        assert!(new_width > 0 && new_width <= self.width);
        DataWord::from_bits_lsb_first((0..new_width).map(|b| self.bit(b)))
    }

    /// Interprets the word as a `u64` if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        let limbs = self.limbs();
        if limbs[1..].iter().any(|&l| l != 0) {
            return None;
        }
        Some(limbs[0])
    }
}

impl fmt::Display for DataWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in (0..self.width).rev() {
            write!(f, "{}", if self.bit(bit) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for DataWord {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        DataWord::from_bits_lsb_first(iter)
    }
}

/// A failing-bit list with inline storage for short lists.
///
/// Fault simulation materialises one of these per
/// [failure record](crate::Sram) — tens of thousands per universe at
/// benchmark scale — and nearly every real record flags only one or two
/// bit positions (a cell fault corrupts one cell, so a single read
/// mismatches in exactly one bit). Storing up to [`FailingBits::INLINE`]
/// positions inline removes the per-record heap allocation that
/// otherwise dominates record materialisation once enough records are
/// live to pressure the allocator; longer lists (e.g. decoder faults
/// mismatching a whole word) spill transparently to a `Vec`.
///
/// Dereferences to `[usize]`, so reading code treats it exactly like
/// the `Vec<usize>` it replaces.
#[derive(Clone, Default)]
pub struct FailingBits {
    inline: [usize; FailingBits::INLINE],
    len: u8,
    spill: Vec<usize>,
}

impl FailingBits {
    /// Number of bit positions stored without a heap allocation.
    pub const INLINE: usize = 2;

    /// An empty list (no allocation).
    #[must_use]
    pub fn new() -> Self {
        FailingBits::default()
    }

    /// An empty list with room for `capacity` positions: inline when it
    /// fits, pre-spilled otherwise so the pushes never re-copy.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FailingBits {
            inline: [0; FailingBits::INLINE],
            len: 0,
            spill: if capacity > FailingBits::INLINE {
                Vec::with_capacity(capacity)
            } else {
                Vec::new()
            },
        }
    }

    /// Appends a bit position, spilling to the heap past
    /// [`FailingBits::INLINE`] entries.
    pub fn push(&mut self, bit: usize) {
        if self.spill.is_empty() && (self.len as usize) < FailingBits::INLINE {
            self.inline[self.len as usize] = bit;
            self.len += 1;
            return;
        }
        if self.spill.is_empty() {
            // Inline storage is full: move it to the heap first.
            self.spill.reserve(FailingBits::INLINE + 1);
            self.spill.extend_from_slice(&self.inline);
            self.len = 0;
        }
        self.spill.push(bit);
    }

    /// Reverses the positions in place (serial diagnosis reports
    /// left-shifted responses MSB first).
    pub fn reverse(&mut self) {
        if self.spill.is_empty() {
            self.inline[..self.len as usize].reverse();
        } else {
            self.spill.reverse();
        }
    }

    fn as_slice(&self) -> &[usize] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for FailingBits {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl fmt::Debug for FailingBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for FailingBits {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FailingBits {}

impl PartialEq<Vec<usize>> for FailingBits {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<FailingBits> for Vec<usize> {
    fn eq(&self, other: &FailingBits) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<usize>> for FailingBits {
    fn from(bits: Vec<usize>) -> Self {
        if bits.len() > FailingBits::INLINE {
            return FailingBits {
                inline: [0; FailingBits::INLINE],
                len: 0,
                spill: bits,
            };
        }
        let mut out = FailingBits::new();
        for &bit in &bits {
            out.push(bit);
        }
        out
    }
}

impl FromIterator<usize> for FailingBits {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut out = FailingBits::new();
        for bit in iter {
            out.push(bit);
        }
        out
    }
}

impl<'a> IntoIterator for &'a FailingBits {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_splat() {
        let z = DataWord::zero(100);
        assert_eq!(z.width(), 100);
        assert_eq!(z.count_ones(), 0);
        let o = DataWord::splat(true, 100);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(o.inverted(), z);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = DataWord::zero(0);
    }

    #[test]
    fn set_and_get_across_limb_boundary() {
        let mut w = DataWord::zero(130);
        w.set(0, true);
        w.set(63, true);
        w.set(64, true);
        w.set(129, true);
        assert!(w.bit(0) && w.bit(63) && w.bit(64) && w.bit(129));
        assert!(!w.bit(1) && !w.bit(65) && !w.bit(128));
        assert_eq!(w.count_ones(), 4);
        w.set(64, false);
        assert!(!w.bit(64));
        assert_eq!(w.count_ones(), 3);
    }

    #[test]
    fn from_u64_round_trips() {
        let w = DataWord::from_u64(0b1011, 4);
        assert_eq!(w.as_u64(), Some(0b1011));
        assert_eq!(w.to_string(), "1011");
        let w = DataWord::from_u64(u64::MAX, 64);
        assert_eq!(w.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn try_bit_reports_out_of_range() {
        let w = DataWord::zero(4);
        assert_eq!(w.try_bit(3), Ok(false));
        assert_eq!(w.try_bit(4), Err(MemError::BitOutOfRange { bit: 4, width: 4 }));
    }

    #[test]
    fn checkerboard_alternates_within_row_and_between_rows() {
        let row0 = DataWord::checkerboard(4, 0, false);
        let row1 = DataWord::checkerboard(4, 1, false);
        assert_eq!(row0.to_string(), "0101"); // bit0=1, bit1=0, ...
        assert_eq!(row1.to_string(), "1010");
        assert_eq!(row0.inverted(), DataWord::checkerboard(4, 0, true));
        assert_eq!(row0, row1.inverted());
    }

    #[test]
    fn column_stripe_is_row_independent() {
        let s = DataWord::column_stripe(5, false);
        assert_eq!(s.to_string(), "10101");
        assert_eq!(DataWord::column_stripe(5, true), s.inverted());
    }

    #[test]
    fn row_stripe_alternates_by_row() {
        assert_eq!(DataWord::row_stripe(3, 0, false), DataWord::splat(true, 3));
        assert_eq!(DataWord::row_stripe(3, 1, false), DataWord::splat(false, 3));
        assert_eq!(DataWord::row_stripe(3, 1, true), DataWord::splat(true, 3));
    }

    #[test]
    fn mismatches_and_xor_agree() {
        let a = DataWord::from_u64(0b1100, 4);
        let b = DataWord::from_u64(0b1010, 4);
        assert_eq!(a.mismatches(&b), vec![1, 2]);
        assert_eq!(a.xor(&b).ones(), vec![1, 2]);
        assert!(a.mismatches(&a).is_empty());
    }

    #[test]
    fn msb_first_ordering_matches_paper_spc_discussion() {
        // DP[3:0] = 0b0111 delivered MSB first is [false, true, true, true].
        let dp = DataWord::from_u64(0b0111, 4);
        assert_eq!(dp.bits_msb_first(), vec![false, true, true, true]);
        assert_eq!(dp.bits_lsb_first(), vec![true, true, true, false]);
    }

    #[test]
    fn truncated_lsb_keeps_low_bits() {
        let dp = DataWord::from_u64(0b0111, 4);
        let narrow = dp.truncated_lsb(3);
        assert_eq!(narrow.width(), 3);
        assert_eq!(narrow.as_u64(), Some(0b111));
    }

    #[test]
    fn as_u64_rejects_wide_words_with_high_bits() {
        let mut wide = DataWord::zero(100);
        wide.set(80, true);
        assert_eq!(wide.as_u64(), None);
        let low = DataWord::zero(100);
        assert_eq!(low.as_u64(), Some(0));
    }

    #[test]
    fn from_iterator_collect() {
        let w: DataWord = vec![true, false, true].into_iter().collect();
        assert_eq!(w.width(), 3);
        assert_eq!(w.as_u64(), Some(0b101));
    }
}
