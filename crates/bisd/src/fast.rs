//! The proposed fast diagnosis scheme (Fig. 3): SPC/PSC converters,
//! March CW and NWRTM-based data-retention diagnosis.

use crate::components::{AddressTrigger, ComparatorArray, DataBackgroundGenerator, StepIndex};
use crate::kernel::DiagnosisKernel;
use crate::log::{DiagnosisLog, DiagnosisRecord};
use crate::population::GoldenStore;
use crate::result::DiagnosisResult;
use crate::scheme::{DiagnosisScheme, MemoryUnderDiagnosis};
use march::shard::{failpoint, CostCalibration, CostDomain, ExecError, RunToken};
use march::{algorithms, AddressOrder, DataBackground, MarchElement, MarchOp, MarchSchedule, ShardPlan};
use serial::{ParallelToSerialConverter, PatternDeliveryBus, ShiftOrder};
use sram_model::{Address, DataWord, MemConfig, MemError, MemoryId, MemoryPort, Sram};
use std::collections::BTreeMap;
use std::fmt;

/// How the scheme handles data-retention faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrfMode {
    /// Ignore DRFs (what the baseline architecture of [7,8] does).
    None,
    /// Merge NWRTM No-Write-Recovery cycles into the last phase: DRFs are
    /// located at speed with no pause (the paper's proposal).
    #[default]
    Nwrtm,
    /// Classical pause-based DRF testing with the given pause per
    /// retention state in milliseconds (kept for comparison).
    RetentionPause(u32),
}

impl fmt::Display for DrfMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrfMode::None => write!(f, "no DRF diagnosis"),
            DrfMode::Nwrtm => write!(f, "NWRTM"),
            DrfMode::RetentionPause(ms) => write!(f, "retention pause {ms} ms"),
        }
    }
}

/// The proposed diagnosis scheme.
///
/// Patterns are delivered serially over the shared bus once per March
/// element, applied in parallel through each memory's SPC, and the read
/// responses are captured in each memory's PSC and shifted back to the
/// controller bit by bit while the memory idles. Every memory is
/// diagnosed concurrently; the run length is set by the largest (most
/// words) and widest (most IO bits) memory, exactly as in Eq. (2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastScheme {
    clock_period_ns: f64,
    drf_mode: DrfMode,
    shift_order: ShiftOrder,
    use_march_cw: bool,
    kernel: DiagnosisKernel,
}

impl FastScheme {
    /// Creates the scheme with the paper's defaults: March CW, NWRTM DRF
    /// diagnosis and MSB-first pattern delivery.
    ///
    /// # Panics
    ///
    /// Panics if the clock period is not positive and finite.
    pub fn new(clock_period_ns: f64) -> Self {
        assert!(
            clock_period_ns.is_finite() && clock_period_ns > 0.0,
            "clock period must be positive"
        );
        FastScheme {
            clock_period_ns,
            drf_mode: DrfMode::Nwrtm,
            shift_order: ShiftOrder::MsbFirst,
            use_march_cw: true,
            kernel: DiagnosisKernel::from_env(),
        }
    }

    /// Selects the DRF handling mode.
    pub fn with_drf_mode(mut self, mode: DrfMode) -> Self {
        self.drf_mode = mode;
        self
    }

    /// Selects the population-stepping kernel explicitly, overriding the
    /// `ESRAM_DIAG_KERNEL` default [`FastScheme::new`] picked up. Both
    /// kernels produce byte-identical results; `PerMemory` is the dense
    /// oracle the equivalence suite compares against.
    pub fn with_kernel(mut self, kernel: DiagnosisKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The population-stepping kernel in use.
    pub fn kernel(&self) -> DiagnosisKernel {
        self.kernel
    }

    /// Selects the serial delivery order (LSB-first exists only for the
    /// Sec. 3.2 ablation; MSB-first is the correct design).
    pub fn with_shift_order(mut self, order: ShiftOrder) -> Self {
        self.shift_order = order;
        self
    }

    /// Uses plain March C− instead of March CW (ablation of the
    /// intra-word background phases).
    pub fn with_march_c_minus(mut self) -> Self {
        self.use_march_cw = false;
        self
    }

    /// Diagnosis clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        self.clock_period_ns
    }

    /// Active DRF mode.
    pub fn drf_mode(&self) -> DrfMode {
        self.drf_mode
    }

    /// The March programme the scheme will execute for a population
    /// whose widest memory has `widest_width` IO bits.
    pub fn schedule(&self, widest_width: usize) -> MarchSchedule {
        let base = if self.use_march_cw {
            algorithms::march_cw(widest_width)
        } else {
            MarchSchedule::single(algorithms::march_c_minus(), DataBackground::Solid)
        };
        match self.drf_mode {
            DrfMode::None => base,
            DrfMode::Nwrtm => base.map_last_phase(format!("{} + NWRTM", base.name()), algorithms::with_nwrtm),
            DrfMode::RetentionPause(ms) => base
                .map_last_phase(format!("{} + retention pauses", base.name()), |t| {
                    algorithms::with_retention_pauses(t, ms)
                }),
        }
    }
}

impl DiagnosisScheme for FastScheme {
    fn name(&self) -> &str {
        "fast (SPC/PSC)"
    }

    fn diagnose(&self, memories: &mut [MemoryUnderDiagnosis]) -> Result<DiagnosisResult, MemError> {
        self.diagnose_with(ShardPlan::default(), memories)
    }
}

/// A fallible diagnosis run failed: either the memory model rejected an
/// operation (a scheme bug) or the executor reported a contained
/// failure — a worker panic, a cancelled [`RunToken`] or an expired
/// deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagError {
    /// A memory-model validation failure surfaced by the scheme.
    Memory(MemError),
    /// The executor run failed (worker panic, cancellation, deadline).
    Exec(ExecError),
}

impl fmt::Display for DiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagError::Memory(error) => write!(f, "memory model error: {error}"),
            DiagError::Exec(error) => write!(f, "execution error: {error}"),
        }
    }
}

impl std::error::Error for DiagError {}

impl From<MemError> for DiagError {
    fn from(error: MemError) -> Self {
        DiagError::Memory(error)
    }
}

impl From<ExecError> for DiagError {
    fn from(error: ExecError) -> Self {
        DiagError::Exec(error)
    }
}

/// One March element of the schedule as planned by the controller before
/// any memory is touched: its position in the schedule, the comparator
/// label, the per-element retention pause and the serially delivered
/// pattern words, keyed by logical write value and distinct IO width
/// (all SPCs of one width capture identical bits, so a width-keyed
/// delivery serves every shard segment regardless of how the population
/// is split).
#[derive(Debug)]
struct ElementPlan {
    phase_index: usize,
    element_index: usize,
    background: DataBackground,
    label: String,
    pause_ms: u64,
    /// `delivered[value][width]` — the word an SPC of `width` presents
    /// after the broadcast for logical `value`.
    delivered: BTreeMap<bool, BTreeMap<usize, DataWord>>,
}

impl FastScheme {
    /// Diagnoses a population of [`MemoryUnderDiagnosis`] under an
    /// explicit [`ShardPlan`] (what [`DiagnosisScheme::diagnose`] calls
    /// with the default plan). Output is byte-identical for every plan.
    ///
    /// # Errors
    ///
    /// Returns an error on memory-model validation failures (which
    /// indicate a bug in the scheme, not in the population).
    pub fn diagnose_with(
        &self,
        plan: ShardPlan,
        memories: &mut [MemoryUnderDiagnosis],
    ) -> Result<DiagnosisResult, MemError> {
        let mut members: Vec<(MemoryId, &mut Sram)> =
            memories.iter_mut().map(|m| (m.id, &mut m.sram)).collect();
        self.diagnose_ports_with(plan, &mut members)
    }

    /// Diagnoses a population presented as `(id, memory)` pairs over any
    /// [`MemoryPort`] implementation, under the default [`ShardPlan`]
    /// (available cores, `ESRAM_DIAG_THREADS` overrides).
    ///
    /// This is the generic core [`DiagnosisScheme::diagnose`] wraps (the
    /// packed population case); the dense-vs-packed equivalence suite
    /// drives it with [`sram_model::ReferenceSram`] populations to prove
    /// the scheme observes identical diagnoses on both memory models.
    ///
    /// # Errors
    ///
    /// Returns an error on memory-model validation failures (which
    /// indicate a bug in the scheme, not in the population).
    pub fn diagnose_ports<M: MemoryPort + Send>(
        &self,
        memories: &mut [(MemoryId, M)],
    ) -> Result<DiagnosisResult, MemError> {
        self.diagnose_ports_with(ShardPlan::default(), memories)
    }

    /// Diagnoses a population under an explicit [`ShardPlan`].
    ///
    /// The population is split into contiguous segments by the
    /// deterministic executor — per-worker chunks (even or calibrated
    /// cost-weighted) or fixed-size stolen blocks, depending on the
    /// plan's strategy; memories are independent given the shared write
    /// stream. Each segment replays the planned schedule with its own
    /// [`GoldenStore`] segment view, PSCs and comparator, and the
    /// per-segment logs are merged back in exact population order — the
    /// result is byte-identical to the sequential (1-thread) walk for
    /// every plan, which the population-shard determinism suite asserts.
    ///
    /// # Errors
    ///
    /// Returns an error on memory-model validation failures (which
    /// indicate a bug in the scheme, not in the population).
    pub fn diagnose_ports_with<M: MemoryPort + Send>(
        &self,
        plan: ShardPlan,
        memories: &mut [(MemoryId, M)],
    ) -> Result<DiagnosisResult, MemError> {
        assert!(!memories.is_empty(), "diagnosis needs at least one memory");
        let configs: Vec<MemConfig> = memories.iter().map(|(_, m)| m.config()).collect();
        let population = self.plan_population(&configs);
        let worker_results: Vec<Result<SegmentOutcome, MemError>> =
            plan.with_domain(CostDomain::Diagnosis).run_segments(
                memories,
                |index, _| population.member_cost(index),
                |base, segment| population.run_segment(base, segment),
            );
        let mut outcomes = Vec::with_capacity(worker_results.len());
        for result in worker_results {
            outcomes.push(result?);
        }
        Ok(population.merge(outcomes))
    }

    /// Fallible [`FastScheme::diagnose_with`]: the same byte-identical
    /// result, but worker panics are contained and `token` cancellation
    /// and deadlines stop the run at segment boundaries with clean
    /// teardown — the memories are resettable and reusable afterwards.
    ///
    /// # Errors
    ///
    /// [`DiagError::Memory`] on memory-model validation failures;
    /// [`DiagError::Exec`] when a worker panicked or the token stopped
    /// the run.
    pub fn try_diagnose_with(
        &self,
        plan: ShardPlan,
        token: &RunToken,
        memories: &mut [MemoryUnderDiagnosis],
    ) -> Result<DiagnosisResult, DiagError> {
        let mut members: Vec<(MemoryId, &mut Sram)> =
            memories.iter_mut().map(|m| (m.id, &mut m.sram)).collect();
        self.try_diagnose_ports_with(plan, token, &mut members)
    }

    /// Fallible [`FastScheme::diagnose_ports_with`] (see
    /// [`FastScheme::try_diagnose_with`]).
    ///
    /// # Errors
    ///
    /// [`DiagError::Memory`] on memory-model validation failures;
    /// [`DiagError::Exec`] when a worker panicked or the token stopped
    /// the run.
    pub fn try_diagnose_ports_with<M: MemoryPort + Send>(
        &self,
        plan: ShardPlan,
        token: &RunToken,
        memories: &mut [(MemoryId, M)],
    ) -> Result<DiagnosisResult, DiagError> {
        assert!(!memories.is_empty(), "diagnosis needs at least one memory");
        let configs: Vec<MemConfig> = memories.iter().map(|(_, m)| m.config()).collect();
        let population = self.plan_population(&configs);
        let worker_results: Vec<Result<SegmentOutcome, MemError>> =
            plan.with_domain(CostDomain::Diagnosis).try_run_segments(
                token,
                memories,
                |index, _| population.member_cost(index),
                |base, segment| population.run_segment(base, segment),
            )?;
        let mut outcomes = Vec::with_capacity(worker_results.len());
        for result in worker_results {
            outcomes.push(result?);
        }
        Ok(population.merge(outcomes))
    }

    /// Plans one diagnosis run for a population of the given geometries
    /// — everything the controller computes *before* any memory is
    /// touched: the schedule, the serially delivered pattern words per
    /// element, the closed-form Eq. (2) cycle/pause accounting and the
    /// kernel decision. The returned [`PopulationPlan`] can then replay
    /// any contiguous segment of the population independently
    /// ([`PopulationPlan::run_segment`]) and merge the segment outcomes
    /// back into the sequential-order result
    /// ([`PopulationPlan::merge`]).
    ///
    /// [`FastScheme::diagnose_ports_with`] is exactly this plus the
    /// executor in between; the fleet runner in `esram-diag` flattens
    /// *several* populations' members into one executor run against
    /// their respective plans.
    pub fn plan_population(&self, configs: &[MemConfig]) -> PopulationPlan {
        assert!(!configs.is_empty(), "diagnosis needs at least one memory");
        let n_max = configs
            .iter()
            .map(|config| config.words())
            .max()
            .expect("non-empty");
        let c_max = configs
            .iter()
            .map(|config| config.width())
            .max()
            .expect("non-empty");
        let generator = DataBackgroundGenerator::new(c_max);
        let widths: Vec<usize> = configs.iter().map(|config| config.width()).collect();
        let schedule = self.schedule(c_max);
        let backgrounds: Vec<DataBackground> =
            schedule.phases().iter().map(|phase| phase.background).collect();
        let trigger = AddressTrigger::new(n_max);

        // The controller's per-element work — serial pattern delivery
        // through the shared bus and the closed-form cycle accounting —
        // is population-global, so it is planned exactly once up front;
        // the workers then replay the planned elements over their
        // segments without touching the shared bus or the counters.
        let mut cycles: u64 = 0;
        let mut pause_ms: f64 = 0.0;
        let mut plans: Vec<ElementPlan> = Vec::new();
        for (phase_index, phase) in schedule.phases().iter().enumerate() {
            for (element_index, element) in phase.test.elements().iter().enumerate() {
                let label = element
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("{}#{}", phase.test.name(), element_index));
                pause_ms += element.pause_ms() as f64;
                let delivered =
                    self.deliver_patterns(element, phase.background, &generator, &widths, &mut cycles);
                cycles += Self::element_cycles(element, n_max, c_max);
                plans.push(ElementPlan {
                    phase_index,
                    element_index,
                    background: phase.background,
                    label,
                    pause_ms: element.pause_ms(),
                    delivered,
                });
            }
        }

        // The bit-parallel kernel's fast/slow split is sound only while
        // "what the SPCs deliver" equals "what the golden model
        // expects": then a fault-free pristine row can never mismatch,
        // so skipping its operations is unobservable. The LSB-first
        // Sec. 3.2 ablation deliberately breaks that equality (narrow
        // memories receive corrupted backgrounds), so any planned
        // delivery deviating from the ideal pattern drops the whole run
        // to the per-memory oracle, which steps everything and observes
        // the corruption exactly as the real hardware would.
        let ideal_delivery = plans.iter().all(|plan| {
            plan.delivered.iter().all(|(&value, by_width)| {
                by_width
                    .iter()
                    .all(|(&width, word)| *word == generator.pattern_for_width(plan.background, value, width))
            })
        });
        let bit_parallel = self.kernel == DiagnosisKernel::BitParallel && ideal_delivery;

        PopulationPlan {
            scheme: *self,
            configs: configs.to_vec(),
            schedule,
            plans,
            generator,
            backgrounds,
            trigger,
            bit_parallel,
            cycles,
            pause_ms,
            calibration: CostCalibration::current(),
        }
    }

    /// Broadcasts the patterns an element needs and returns, per logical
    /// write value, the word the SPCs of each distinct IO *width*
    /// present after the broadcast (all SPCs of one width capture
    /// identical bits, so one materialisation per distinct width serves
    /// the whole population and every shard segment of it).
    fn deliver_patterns(
        &self,
        element: &MarchElement,
        background: DataBackground,
        generator: &DataBackgroundGenerator,
        widths: &[usize],
        cycles: &mut u64,
    ) -> BTreeMap<bool, BTreeMap<usize, DataWord>> {
        let mut delivered = BTreeMap::new();
        let mut values: Vec<bool> = Vec::new();
        for op in &element.ops {
            if op.is_write() {
                if let Some(value) = op.value() {
                    if !values.contains(&value) {
                        values.push(value);
                    }
                }
            }
        }
        for value in values {
            let mut bus = PatternDeliveryBus::with_order(widths, self.shift_order);
            let pattern = generator.pattern(background, value);
            *cycles += bus.broadcast(&pattern);
            let mut per_width: BTreeMap<usize, DataWord> = BTreeMap::new();
            for (member, &width) in widths.iter().enumerate() {
                per_width.entry(width).or_insert_with(|| bus.pattern_at(member));
            }
            delivered.insert(value, per_width);
        }
        delivered
    }

    /// Cycle cost of one March element over the population, computed in
    /// closed form: every non-pause operation costs one cycle, and every
    /// read additionally carries the PSC shift window sized for the
    /// widest memory (the controller is designed for the widest e-SRAM,
    /// Sec. 3.1).
    ///
    /// Cycle accounting is deliberately split from behavioural stepping:
    /// the segment loop below only moves data, so its cost no longer
    /// contributes per-operation bookkeeping, and the accounting itself
    /// is exact by construction (it is Eq. (2) factored per element).
    fn element_cycles(element: &MarchElement, n_max: u64, c_max: usize) -> u64 {
        n_max * (element.ops_per_address() as u64 + element.reads_per_address() as u64 * c_max as u64)
    }
}

/// One population segment's replay output: the segment's diagnosis log
/// plus, per record, the global operation sequence number it was
/// observed at (the merge key). Opaque — produced by
/// [`PopulationPlan::run_segment`], consumed by
/// [`PopulationPlan::merge`].
#[derive(Debug)]
pub struct SegmentOutcome {
    sequences: Vec<u64>,
    log: DiagnosisLog,
}

/// The controller's population-global planning for one diagnosis run,
/// built once by [`FastScheme::plan_population`]: the schedule, the
/// per-element serially delivered pattern words, the closed-form
/// Eq. (2) cycle/pause accounting, the kernel decision and the active
/// cost calibration.
///
/// The plan is segment-agnostic: any contiguous slice of the population
/// replays through [`PopulationPlan::run_segment`] (each segment builds
/// its own [`GoldenStore`] view — a member's golden word depends only
/// on the shared write stream and its own geometry), and
/// [`PopulationPlan::merge`] reassembles per-segment outcomes into the
/// exact sequential-order [`DiagnosisResult`] no matter how the
/// population was split. This is what lets the fleet runner interleave
/// segments of *different* populations in one executor run.
#[derive(Debug)]
pub struct PopulationPlan {
    scheme: FastScheme,
    configs: Vec<MemConfig>,
    schedule: MarchSchedule,
    plans: Vec<ElementPlan>,
    generator: DataBackgroundGenerator,
    backgrounds: Vec<DataBackground>,
    trigger: AddressTrigger,
    bit_parallel: bool,
    cycles: u64,
    pause_ms: f64,
    calibration: CostCalibration,
}

impl PopulationPlan {
    /// Number of memories the plan was built for.
    pub fn member_count(&self) -> usize {
        self.configs.len()
    }

    /// Closed-form Eq. (2) diagnosis cycles of the planned run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated retention-pause time of the planned run.
    pub fn pause_ms(&self) -> f64 {
        self.pause_ms
    }

    /// Calibrated cost estimate for diagnosing member `index`
    /// (diagnosis-domain pricing of the member's IO width). Used by the
    /// executor's cost-weighted and stealing strategies; influences
    /// shard boundaries only, never results.
    pub fn member_cost(&self, index: usize) -> u64 {
        self.calibration
            .cost(CostDomain::Diagnosis, self.configs[index].width() as u64)
    }

    /// Replays the planned schedule over one contiguous population
    /// segment starting at member `base`, dispatching to the planned
    /// kernel (bit-parallel, or the per-memory oracle when the kernel
    /// choice or a non-ideal delivery demands it).
    ///
    /// # Errors
    ///
    /// Returns an error on memory-model validation failures (which
    /// indicate a bug in the scheme, not in the population).
    ///
    /// # Panics
    ///
    /// Panics if `base + segment.len()` exceeds the planned population
    /// (the segment must come from the member list the plan was built
    /// for).
    pub fn run_segment<M: MemoryPort>(
        &self,
        base: usize,
        memories: &mut [(MemoryId, M)],
    ) -> Result<SegmentOutcome, MemError> {
        // Chaos injection site: unqualified specs fire at every
        // segment; the fleet runner layers its own job-qualified hits
        // on top of this one.
        failpoint::trip("diag.segment", &[("base", base as u64)]);
        let configs = &self.configs[base..base + memories.len()];
        if self.bit_parallel {
            self.run_segment_bitparallel(memories, configs)
        } else {
            self.run_segment_permem(memories, configs)
        }
    }

    /// Reassembles per-segment outcomes (in segment = member order)
    /// into the sequential-order [`DiagnosisResult`]: the global
    /// operation sequence number is the primary key and segment order
    /// breaks ties (per-segment sequences are nondecreasing), so a
    /// stable sort over the segment-ordered concatenation reproduces
    /// the 1-thread walk byte for byte. A single segment (the
    /// sequential path) *is* that walk, so its log passes through
    /// untouched.
    pub fn merge(&self, outcomes: Vec<SegmentOutcome>) -> DiagnosisResult {
        let log = if outcomes.len() == 1 {
            outcomes.into_iter().next().expect("one segment").log
        } else {
            let mut tagged: Vec<(u64, DiagnosisRecord)> = Vec::new();
            for outcome in outcomes {
                tagged.extend(outcome.sequences.into_iter().zip(outcome.log.into_records()));
            }
            tagged.sort_by_key(|&(sequence, _)| sequence);
            let mut log = DiagnosisLog::new();
            log.extend(tagged.into_iter().map(|(_, record)| record));
            log
        };
        DiagnosisResult {
            scheme: DiagnosisScheme::name(&self.scheme).to_string(),
            log,
            cycles: self.cycles,
            pause_ms: self.pause_ms,
            iterations: 1,
            clock_period_ns: self.scheme.clock_period_ns,
        }
    }

    /// Replays the planned schedule over one contiguous population
    /// segment and returns the segment's diagnosis log, each record
    /// tagged with the global operation sequence number it was observed
    /// at (the shard-merge key).
    ///
    /// The segment owns its own [`GoldenStore`] view: a memory's golden
    /// word depends only on the shared write stream and the memory's own
    /// geometry, so a store built from the segment's configs holds
    /// exactly the expectations the whole-population store would hand
    /// these members. Per write the store updates one value-plane bit
    /// per distinct word count; per read the expectation is borrowed
    /// from the per-background pattern matrix — no golden words are
    /// cloned or compared per memory anywhere in this loop.
    fn run_segment_permem<M: MemoryPort>(
        &self,
        memories: &mut [(MemoryId, M)],
        configs: &[MemConfig],
    ) -> Result<SegmentOutcome, MemError> {
        let trigger = self.trigger;
        let mut golden = GoldenStore::new(configs, &self.generator, &self.backgrounds);
        let class_widths: Vec<usize> = golden.class_widths().to_vec();
        let mut pscs: Vec<ParallelToSerialConverter> = configs
            .iter()
            .map(|config| ParallelToSerialConverter::new(config.width()))
            .collect();
        let mut comparator = ComparatorArray::new();
        let mut sequences: Vec<u64> = Vec::new();
        let mut op_seq: u64 = 0;

        for plan in &self.plans {
            let element = &self.schedule.phases()[plan.phase_index].test.elements()[plan.element_index];

            // Retention pauses apply once per element, to every memory.
            if plan.pause_ms > 0 {
                for (_, memory) in memories.iter_mut() {
                    memory.elapse_retention(plan.pause_ms as f64);
                }
            }

            // Materialise the width-keyed delivery for this segment's
            // width classes, once per element.
            let per_class: BTreeMap<bool, Vec<DataWord>> = plan
                .delivered
                .iter()
                .map(|(&value, by_width)| {
                    (
                        value,
                        class_widths.iter().map(|width| by_width[width].clone()).collect(),
                    )
                })
                .collect();

            let addresses: Vec<Address> = match element.order {
                AddressOrder::Ascending | AddressOrder::Either => trigger.ascending().collect(),
                AddressOrder::Descending => trigger.descending().collect(),
            };

            for global in addresses {
                for op in &element.ops {
                    // Every worker advances the sequence identically
                    // (the schedule walk is segment-independent), so
                    // equal sequence numbers across segments mean "the
                    // same population-wide operation".
                    op_seq += 1;
                    match op {
                        MarchOp::Pause(_) => {}
                        MarchOp::Write(value) | MarchOp::NwrcWrite(value) => {
                            let nwrc = op.is_nwrc();
                            // NWRC writes succeed on good cells, so the
                            // expectation matches a normal write.
                            golden.record_write(plan.phase_index, global, *value);
                            let words = &per_class[value];
                            for (index, (_, memory)) in memories.iter_mut().enumerate() {
                                let local = trigger.local_address(global, golden.member_words(index));
                                let data = &words[golden.member_width_class(index)];
                                if nwrc {
                                    memory.write_nwrc(local, data)?;
                                } else {
                                    memory.write(local, data)?;
                                }
                            }
                        }
                        MarchOp::Read(_) => {
                            for (index, (id, memory)) in memories.iter_mut().enumerate() {
                                let local = trigger.local_address(global, golden.member_words(index));
                                let observed = memory.read(local)?;
                                // Capture into the PSC and shift the
                                // response back to the controller while
                                // the memory idles.
                                let (received, _) = pscs[index].serialize_word(&observed);
                                let expected = golden.expected_at(index, local);
                                let failing = comparator.compare(
                                    *id,
                                    local,
                                    plan.background,
                                    &plan.label,
                                    expected,
                                    &received,
                                );
                                if !failing.is_empty() {
                                    sequences.push(op_seq);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(SegmentOutcome {
            sequences,
            log: comparator.into_log(),
        })
    }

    /// Replays the planned schedule over one contiguous population
    /// segment through the bit-parallel kernel: instead of stepping
    /// every operation of every memory through its SPC/PSC pair, only
    /// the sparse set of (memory, row) pairs whose behaviour can
    /// deviate from the golden expectation is stepped at all.
    ///
    /// Soundness rests on three facts, each declared by the memory
    /// itself through [`sram_model::AccessProfile`]:
    ///
    /// * With ideal delivery (checked by the caller; otherwise the
    ///   per-memory oracle runs), the word a fault-free pristine row
    ///   observes is exactly the golden expectation — equal limb
    ///   planes by construction, since both sides are the same pattern
    ///   word of the phase that last wrote the row. Skipped reads are
    ///   therefore guaranteed matches and skipped writes store exactly
    ///   what the golden model already tracks.
    /// * Deviation is row-confined for every overlay fault class except
    ///   stuck-open (which echoes the sense amplifier across rows) and
    ///   decoder faults (which remap rows); those memories report
    ///   [`sram_model::AccessProfile::Opaque`] and are stepped densely
    ///   — but through [`MemoryPort::read_expect`], which fuses the
    ///   read, the (lossless) PSC shift-back and the comparison into
    ///   one limb pass. Coupling aggressor rows are part of the stepped
    ///   set, so victim-driving write transitions replay exactly.
    /// * The global operation sequence counter advances identically to
    ///   the per-memory walk (the schedule walk is population-global),
    ///   and within one operation members are visited in ascending
    ///   index order — so mismatch records carry identical sequence
    ///   numbers in identical order, and sharded logs stay
    ///   byte-identical to the oracle's.
    ///
    /// Cycle accounting never enters this function: Eq. (2) is computed
    /// in closed form during planning, so skipping behavioural steps
    /// cannot change it.
    fn run_segment_bitparallel<M: MemoryPort>(
        &self,
        memories: &mut [(MemoryId, M)],
        configs: &[MemConfig],
    ) -> Result<SegmentOutcome, MemError> {
        let trigger = self.trigger;
        let mut golden = GoldenStore::new(configs, &self.generator, &self.backgrounds);
        let class_widths: Vec<usize> = golden.class_widths().to_vec();
        let mut comparator = ComparatorArray::new();
        let mut sequences: Vec<u64> = Vec::new();
        let mut op_seq: u64 = 0;

        // Classify once per segment: faults are installed before diagnosis
        // and the stepped rows of a row-local member are a static
        // superset of where mismatches can appear (prior mismatches
        // happen *at* faulted rows, and every stepped row is replayed
        // in full, so no dynamic re-classification is needed).
        let profiles: Vec<_> = memories.iter().map(|(_, m)| m.access_profile()).collect();
        let member_words: Vec<u64> = (0..memories.len()).map(|m| golden.member_words(m)).collect();
        let steps = StepIndex::new(&profiles, &member_words, trigger.max_words());

        for plan in &self.plans {
            let element = &self.schedule.phases()[plan.phase_index].test.elements()[plan.element_index];

            // Retention pauses reach every stepped memory; a skipped
            // (pristine) memory holds no retention-faulted cells, so
            // elapsing its clock would be a behavioural no-op anyway.
            if plan.pause_ms > 0 {
                for (index, (_, memory)) in memories.iter_mut().enumerate() {
                    if steps.is_stepped(index) {
                        memory.elapse_retention(plan.pause_ms as f64);
                    }
                }
            }

            let per_class: BTreeMap<bool, Vec<DataWord>> = plan
                .delivered
                .iter()
                .map(|(&value, by_width)| {
                    (
                        value,
                        class_widths.iter().map(|width| by_width[width].clone()).collect(),
                    )
                })
                .collect();

            let addresses: Vec<Address> = match element.order {
                AddressOrder::Ascending | AddressOrder::Either => trigger.ascending().collect(),
                AddressOrder::Descending => trigger.descending().collect(),
            };

            for global in addresses {
                let active = steps.members_at(global);
                for op in &element.ops {
                    op_seq += 1;
                    match op {
                        MarchOp::Pause(_) => {}
                        MarchOp::Write(value) | MarchOp::NwrcWrite(value) => {
                            let nwrc = op.is_nwrc();
                            // The golden model tracks the *whole* write
                            // stream — skipped members' expectations
                            // must stay current for later stepped rows
                            // of the same value class.
                            golden.record_write(plan.phase_index, global, *value);
                            if active.is_empty() {
                                continue;
                            }
                            let words = &per_class[value];
                            for &member in active {
                                let member = member as usize;
                                let local = trigger.local_address(global, golden.member_words(member));
                                let data = &words[golden.member_width_class(member)];
                                let memory = &mut memories[member].1;
                                if nwrc {
                                    memory.write_nwrc(local, data)?;
                                } else {
                                    memory.write(local, data)?;
                                }
                            }
                        }
                        MarchOp::Read(_) => {
                            for &member in active {
                                let member = member as usize;
                                let (local, expected) = golden.expected_at_global(member, global);
                                // One fused limb pass replaces read +
                                // PSC shift-back + compare: the PSC
                                // serialisation is lossless (capture
                                // then reconstruct), so the word the
                                // comparator would see *is* the word
                                // the port observed.
                                if let Some(observed) = memories[member].1.read_expect(local, expected)? {
                                    let failing = comparator.compare(
                                        memories[member].0,
                                        local,
                                        plan.background,
                                        &plan.label,
                                        expected,
                                        &observed,
                                    );
                                    debug_assert!(!failing.is_empty(), "read_expect reported a match");
                                    sequences.push(op_seq);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(SegmentOutcome {
            sequences,
            log: comparator.into_log(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_models::{FaultList, MemoryFault};
    use sram_model::cell::CellCoord;
    use sram_model::{MemConfig, MemoryId};

    fn population() -> Vec<MemoryUnderDiagnosis> {
        vec![
            MemoryUnderDiagnosis::pristine(MemoryId::new(0), MemConfig::new(32, 8).unwrap()),
            MemoryUnderDiagnosis::pristine(MemoryId::new(1), MemConfig::new(16, 4).unwrap()),
        ]
    }

    fn with_fault(
        mut population: Vec<MemoryUnderDiagnosis>,
        memory: usize,
        fault: MemoryFault,
    ) -> Vec<MemoryUnderDiagnosis> {
        fault.inject_into(&mut population[memory].sram).unwrap();
        let mut list = FaultList::new();
        list.push(fault);
        population[memory].injected = list;
        population
    }

    #[test]
    fn clean_population_diagnoses_clean() {
        let mut memories = population();
        let result = FastScheme::new(10.0).diagnose(&mut memories).unwrap();
        assert!(result.is_clean());
        assert_eq!(result.iterations, 1);
        assert!(result.cycles > 0);
        assert_eq!(result.pause_ms, 0.0);
    }

    #[test]
    fn stuck_at_fault_is_located_in_the_right_memory() {
        let site = CellCoord::new(Address::new(5), 2);
        let mut memories = with_fault(population(), 1, MemoryFault::stuck_at_1(site));
        let result = FastScheme::new(10.0).diagnose(&mut memories).unwrap();
        let sites = result.sites(MemoryId::new(1));
        assert_eq!(sites.len(), 1);
        let located = sites.iter().next().unwrap();
        assert_eq!(located.address, Address::new(5));
        assert_eq!(located.bit, 2);
        assert!(result.sites(MemoryId::new(0)).is_empty());
    }

    #[test]
    fn faults_in_several_memories_are_located_in_one_pass() {
        let mut memories = population();
        MemoryFault::stuck_at_0(CellCoord::new(Address::new(3), 7))
            .inject_into(&mut memories[0].sram)
            .unwrap();
        MemoryFault::transition_up(CellCoord::new(Address::new(9), 1))
            .inject_into(&mut memories[1].sram)
            .unwrap();
        let result = FastScheme::new(10.0).diagnose(&mut memories).unwrap();
        assert_eq!(result.iterations, 1);
        assert!(!result.sites(MemoryId::new(0)).is_empty());
        assert!(!result.sites(MemoryId::new(1)).is_empty());
    }

    #[test]
    fn drf_is_located_with_nwrtm_and_missed_without() {
        let site = CellCoord::new(Address::new(7), 3);
        let fault = MemoryFault::data_retention_a(site);

        let mut with_nwrtm = with_fault(population(), 0, fault);
        let nwrtm_result = FastScheme::new(10.0).diagnose(&mut with_nwrtm).unwrap();
        assert_eq!(nwrtm_result.sites(MemoryId::new(0)).len(), 1);
        assert_eq!(nwrtm_result.pause_ms, 0.0, "NWRTM must not pause");

        let mut without = with_fault(population(), 0, fault);
        let plain_result = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::None)
            .diagnose(&mut without)
            .unwrap();
        assert!(plain_result.is_clean(), "without NWRTM the DRF must escape");
    }

    #[test]
    fn retention_pause_mode_also_finds_drf_but_costs_200ms() {
        let site = CellCoord::new(Address::new(2), 0);
        let mut memories = with_fault(population(), 0, MemoryFault::data_retention_a(site));
        let result = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::RetentionPause(100))
            .diagnose(&mut memories)
            .unwrap();
        assert_eq!(result.sites(MemoryId::new(0)).len(), 1);
        assert_eq!(result.pause_ms, 200.0);
        assert!(result.time_ms() > 200.0);
    }

    #[test]
    fn cycle_count_matches_eq2_for_a_single_memory_population() {
        // Eq. (2) with n = 32, c = 8: March CW without DRF diagnosis costs
        // (5n + 5c + 5n(c+1)) + (3n + 3c + 2n(c+1)) * ceil(log2 c) cycles.
        let n: u64 = 32;
        let c: u64 = 8;
        let mut memories = vec![MemoryUnderDiagnosis::pristine(
            MemoryId::new(0),
            MemConfig::new(n, c as usize).unwrap(),
        )];
        let result = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::None)
            .diagnose(&mut memories)
            .unwrap();
        let expected = (5 * n + 5 * c + 5 * n * (c + 1)) + (3 * n + 3 * c + 2 * n * (c + 1)) * 3;
        assert_eq!(result.cycles, expected);
    }

    #[test]
    fn wrapped_smaller_memories_do_not_raise_false_failures() {
        // A fault-free small memory sharing the address trigger with a
        // larger one must not produce mismatches despite wrap-around
        // read-modify-write redundancy.
        let mut memories = vec![
            MemoryUnderDiagnosis::pristine(MemoryId::new(0), MemConfig::new(64, 6).unwrap()),
            MemoryUnderDiagnosis::pristine(MemoryId::new(1), MemConfig::new(8, 3).unwrap()),
        ];
        let result = FastScheme::new(10.0).diagnose(&mut memories).unwrap();
        assert!(result.is_clean());
    }

    #[test]
    fn lsb_first_delivery_misbehaves_for_heterogeneous_widths() {
        // The Sec. 3.2 ablation: with LSB-first delivery the narrower
        // memory receives corrupted backgrounds, so the controller's
        // expectations no longer hold.
        let mut memories = population();
        let result = FastScheme::new(10.0)
            .with_shift_order(ShiftOrder::LsbFirst)
            .with_drf_mode(DrfMode::None)
            .diagnose(&mut memories)
            .unwrap();
        assert!(
            !result.sites(MemoryId::new(1)).is_empty() || !result.is_clean(),
            "LSB-first delivery must corrupt diagnosis of the narrower memory"
        );
    }

    #[test]
    fn march_c_minus_ablation_runs_fewer_cycles_than_march_cw() {
        let mut a = population();
        let cw = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::None)
            .diagnose(&mut a)
            .unwrap();
        let mut b = population();
        let cm = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::None)
            .with_march_c_minus()
            .diagnose(&mut b)
            .unwrap();
        assert!(cm.cycles < cw.cycles);
    }

    #[test]
    #[should_panic(expected = "clock period")]
    fn non_positive_clock_period_panics() {
        let _ = FastScheme::new(0.0);
    }

    #[test]
    fn drf_mode_display() {
        assert_eq!(DrfMode::Nwrtm.to_string(), "NWRTM");
        assert_eq!(DrfMode::None.to_string(), "no DRF diagnosis");
        assert_eq!(DrfMode::RetentionPause(100).to_string(), "retention pause 100 ms");
        assert_eq!(DrfMode::default(), DrfMode::Nwrtm);
    }
}
