//! One test per [`SpecErrorKind`] variant: every way a spec can be
//! rejected produces the right kind, anchored at a real span, and a
//! `Display` line the CI negative rows can grep (`line N, column M`).

use esram_spec::{ScenarioSpec, SpecError, SpecErrorKind};

/// A minimal valid spec the mutations below build on.
const VALID: &str = concat!(
    "[scenario]\n",
    "name = \"valid\"\n",
    "\n",
    "[[memory]]\n",
    "words = 64\n",
    "width = 8\n",
);

fn reject(source: &str) -> SpecError {
    let error = ScenarioSpec::parse(source).expect_err("spec must be rejected");
    // Every rejection must carry a grep-able span in its message.
    let message = error.to_string();
    assert!(
        message.contains("line ") && message.contains("column "),
        "error message lacks a span: {message}"
    );
    error
}

#[test]
fn the_base_spec_is_valid() {
    ScenarioSpec::parse(VALID).expect("base spec parses");
}

// ---- TOML syntax ---------------------------------------------------

#[test]
fn expected_key() {
    assert!(matches!(
        reject("[scenario]\n= 5\n").kind,
        SpecErrorKind::ExpectedKey
    ));
}

#[test]
fn expected_equals() {
    assert!(matches!(
        reject("[scenario]\nname \"x\"\n").kind,
        SpecErrorKind::ExpectedEquals
    ));
}

#[test]
fn expected_value() {
    assert!(matches!(
        reject("[scenario]\nname =\n").kind,
        SpecErrorKind::ExpectedValue
    ));
}

#[test]
fn unterminated_string() {
    assert!(matches!(
        reject("[scenario]\nname = \"open\n").kind,
        SpecErrorKind::UnterminatedString
    ));
}

#[test]
fn unterminated_header() {
    assert!(matches!(
        reject("[scenario\nname = \"x\"\n").kind,
        SpecErrorKind::UnterminatedHeader
    ));
}

#[test]
fn unterminated_array() {
    let source = format!("{VALID}[sweep]\nseeds = [1, 2\n");
    assert!(matches!(reject(&source).kind, SpecErrorKind::UnterminatedArray));
}

#[test]
fn invalid_escape() {
    assert!(matches!(
        reject("[scenario]\nname = \"a\\qb\"\n").kind,
        SpecErrorKind::InvalidEscape
    ));
}

#[test]
fn invalid_value() {
    let error = reject("[scenario]\nseed = 2005-01-01\n");
    assert!(matches!(error.kind, SpecErrorKind::InvalidValue(token) if token == "2005-01-01"));
}

#[test]
fn trailing_garbage() {
    let error = reject(&format!("{VALID}[defects]\nrate = 0.01 oops\n"));
    assert!(matches!(error.kind, SpecErrorKind::TrailingGarbage));
    assert_eq!((error.span.line, error.span.col), (8, 13));
}

#[test]
fn duplicate_key() {
    let source = "[scenario]\nname = \"a\"\nname = \"b\"\n";
    assert!(matches!(reject(source).kind, SpecErrorKind::DuplicateKey(key) if key == "name"));
}

#[test]
fn duplicate_section() {
    let source = format!("{VALID}[defects]\n[defects]\n");
    assert!(matches!(reject(&source).kind, SpecErrorKind::DuplicateSection(name) if name == "defects"));
}

// ---- schema validation ---------------------------------------------

#[test]
fn root_key() {
    let source = format!("stray = 1\n{VALID}");
    assert!(matches!(reject(&source).kind, SpecErrorKind::RootKey(key) if key == "stray"));
}

#[test]
fn unknown_section_table_and_array() {
    let table = format!("{VALID}[bogus]\n");
    assert!(matches!(reject(&table).kind, SpecErrorKind::UnknownSection(name) if name == "bogus"));
    let array = format!("{VALID}[[bogus]]\n");
    assert!(matches!(reject(&array).kind, SpecErrorKind::UnknownSection(name) if name == "bogus"));
}

#[test]
fn unknown_key() {
    let source = format!("{VALID}[defects]\ndensity = 0.5\n");
    assert!(matches!(reject(&source).kind, SpecErrorKind::UnknownKey(key) if key == "density"));
}

#[test]
fn missing_section() {
    let source = "[[memory]]\nwords = 64\nwidth = 8\n";
    assert!(matches!(
        reject(source).kind,
        SpecErrorKind::MissingSection("scenario")
    ));
}

#[test]
fn missing_key() {
    assert!(matches!(
        reject("[scenario]\nseed = 1\n\n[[memory]]\nwords = 64\nwidth = 8\n").kind,
        SpecErrorKind::MissingKey("name")
    ));
    assert!(matches!(
        reject("[scenario]\nname = \"x\"\n\n[[memory]]\nwidth = 8\n").kind,
        SpecErrorKind::MissingKey("words")
    ));
}

#[test]
fn wrong_type() {
    let error = reject("[scenario]\nname = 5\n\n[[memory]]\nwords = 64\nwidth = 8\n");
    assert!(matches!(
        error.kind,
        SpecErrorKind::WrongType {
            key,
            expected: "string",
            found: "integer",
        } if key == "name"
    ));
}

#[test]
fn out_of_range() {
    let negative = reject("[scenario]\nname = \"x\"\nseed = -1\n\n[[memory]]\nwords = 64\nwidth = 8\n");
    assert!(matches!(negative.kind, SpecErrorKind::OutOfRange { key, .. } if key == "seed"));
    let zero_count = reject("[scenario]\nname = \"x\"\n\n[[memory]]\ncount = 0\nwords = 64\nwidth = 8\n");
    assert!(matches!(zero_count.kind, SpecErrorKind::OutOfRange { key, .. } if key == "count"));
    let zero_cap = reject(&format!(
        "{VALID}[scheme]\nkind = \"baseline\"\nmax_iterations = 0\n"
    ));
    assert!(matches!(zero_cap.kind, SpecErrorKind::OutOfRange { key, .. } if key == "max_iterations"));
    let big_pause = reject(&format!(
        "{VALID}[scheme]\ndrf = \"pause\"\npause_ms = 5000000000\n"
    ));
    assert!(matches!(big_pause.kind, SpecErrorKind::OutOfRange { key, .. } if key == "pause_ms"));
}

#[test]
fn invalid_geometry() {
    let error = reject("[scenario]\nname = \"x\"\n\n[[memory]]\nwords = 512\nwidth = 200\n");
    assert!(matches!(error.kind, SpecErrorKind::InvalidGeometry(_)));
    assert_eq!(error.span.line, 5, "geometry errors anchor at the words key");
}

#[test]
fn unknown_scheme() {
    let error = reject(&format!("{VALID}[scheme]\nkind = \"turbo\"\n"));
    assert!(matches!(error.kind, SpecErrorKind::UnknownScheme(kind) if kind == "turbo"));
}

#[test]
fn unknown_drf() {
    let error = reject(&format!("{VALID}[scheme]\ndrf = \"magic\"\n"));
    assert!(matches!(error.kind, SpecErrorKind::UnknownDrf(mode) if mode == "magic"));
}

#[test]
fn missing_pause() {
    let error = reject(&format!("{VALID}[scheme]\ndrf = \"pause\"\n"));
    assert!(matches!(error.kind, SpecErrorKind::MissingPause));
}

#[test]
fn inapplicable_key() {
    // An iteration cap makes no sense for the fast scheme.
    let cap = reject(&format!("{VALID}[scheme]\nmax_iterations = 10\n"));
    assert!(matches!(cap.kind, SpecErrorKind::InapplicableKey { key, .. } if key == "max_iterations"));
    // A pause length without pause-based DRF testing.
    let pause = reject(&format!("{VALID}[scheme]\ndrf = \"none\"\npause_ms = 100\n"));
    assert!(matches!(pause.kind, SpecErrorKind::InapplicableKey { key, .. } if key == "pause_ms"));
    // NWRTM is the fast scheme's test mode.
    let nwrtm = reject(&format!(
        "{VALID}[scheme]\nkind = \"baseline\"\ndrf = \"nwrtm\"\n"
    ));
    assert!(matches!(nwrtm.kind, SpecErrorKind::InapplicableKey { key, .. } if key == "drf"));
}

#[test]
fn unknown_kernel() {
    let error = reject(&format!("{VALID}[execution]\nkernel = \"gpu\"\n"));
    assert!(matches!(error.kind, SpecErrorKind::UnknownKernel(name) if name == "gpu"));
}

#[test]
fn unknown_faultsim_kernel() {
    // The same malformed value the CI env-guard rejects ambiently.
    let error = reject(&format!("{VALID}[execution]\nfaultsim_kernel = \"lnaes\"\n"));
    assert!(matches!(error.kind, SpecErrorKind::UnknownFaultSimKernel(name) if name == "lnaes"));
}

#[test]
fn unknown_fault_class() {
    let error = reject(&format!(
        "{VALID}[defects]\nclasses = [\"stuck-at\", \"bit-rot\"]\n"
    ));
    assert!(matches!(error.kind, SpecErrorKind::UnknownFaultClass(name) if name == "bit-rot"));
}

#[test]
fn empty_classes() {
    let error = reject(&format!("{VALID}[defects]\nclasses = []\n"));
    assert!(matches!(error.kind, SpecErrorKind::EmptyClasses));
}

#[test]
fn invalid_defect_rate() {
    let direct = reject(&format!("{VALID}[defects]\nrate = 1.5\n"));
    assert!(matches!(direct.kind, SpecErrorKind::InvalidDefectRate(rate) if rate == 1.5));
    let swept = reject(&format!("{VALID}[sweep]\ndefect_rates = [0.01, -0.5]\n"));
    assert!(matches!(swept.kind, SpecErrorKind::InvalidDefectRate(rate) if rate == -0.5));
}

#[test]
fn invalid_clock() {
    let zero = reject(&format!("{VALID}[scheme]\nclock_ns = 0.0\n"));
    assert!(matches!(zero.kind, SpecErrorKind::InvalidClock(clock) if clock == 0.0));
    let negative = reject(&format!("{VALID}[scheme]\nclock_ns = -10.0\n"));
    assert!(matches!(negative.kind, SpecErrorKind::InvalidClock(_)));
}

#[test]
fn empty_memories() {
    assert!(matches!(
        reject("[scenario]\nname = \"x\"\n").kind,
        SpecErrorKind::EmptyMemories
    ));
}

#[test]
fn empty_sweep() {
    let rates = reject(&format!("{VALID}[sweep]\ndefect_rates = []\n"));
    assert!(matches!(rates.kind, SpecErrorKind::EmptySweep("defect_rates")));
    let seeds = reject(&format!("{VALID}[sweep]\nseeds = []\n"));
    assert!(matches!(seeds.kind, SpecErrorKind::EmptySweep("seeds")));
}

#[test]
fn invalid_name() {
    let spaced = reject("[scenario]\nname = \"has space\"\n\n[[memory]]\nwords = 64\nwidth = 8\n");
    assert!(matches!(spaced.kind, SpecErrorKind::InvalidName(name) if name == "has space"));
    let empty_dir = reject(&format!("{VALID}[report]\ndir = \"\"\n"));
    assert!(matches!(empty_dir.kind, SpecErrorKind::InvalidName(name) if name.is_empty()));
}
