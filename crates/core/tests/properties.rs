//! Property-based tests on the core data structures and invariants.

use esram_diag::MemoryUnderDiagnosis;
use esram_diag::{
    algorithms, Address, AnalyticModel, DataBackground, DataWord, DiagnosisScheme, FastScheme, MemConfig,
    MemoryFault, MemoryId,
};
use march::{FaultSimulator, MarchRunner};
use proptest::prelude::*;
use serial::{ParallelToSerialConverter, SerialToParallelConverter, ShiftOrder};
use sram_model::cell::CellCoord;
use sram_model::Sram;

fn arb_word(width: usize) -> impl Strategy<Value = DataWord> {
    proptest::collection::vec(any::<bool>(), width).prop_map(DataWord::from_bits_lsb_first)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A word survives a round trip through bit decomposition in either
    /// order.
    #[test]
    fn dataword_bit_round_trip(width in 1usize..130, seed in any::<u64>()) {
        let mut word = DataWord::zero(width);
        for bit in 0..width {
            word.set(bit, (seed >> (bit % 64)) & 1 == 1);
        }
        let lsb = DataWord::from_bits_lsb_first(word.bits_lsb_first());
        prop_assert_eq!(&lsb, &word);
        let msb_bits = word.bits_msb_first();
        let back = DataWord::from_bits_lsb_first(msb_bits.iter().rev().copied());
        prop_assert_eq!(&back, &word);
        prop_assert_eq!(word.inverted().inverted(), word);
    }

    /// Mismatch positions are symmetric and consistent with XOR.
    #[test]
    fn dataword_mismatches_match_xor(width in 1usize..100, a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let make = |seed: u64| {
            let mut w = DataWord::zero(width);
            for bit in 0..width {
                w.set(bit, (seed >> (bit % 64)) & 1 == 1);
            }
            w
        };
        let a = make(a_seed);
        let b = make(b_seed);
        prop_assert_eq!(a.mismatches(&b), b.mismatches(&a));
        prop_assert_eq!(a.mismatches(&b), a.xor(&b).ones());
    }

    /// MSB-first delivery through an SPC always leaves a narrower memory
    /// with the low-order bits of the wide pattern (Sec. 3.2).
    #[test]
    fn spc_msb_first_preserves_low_bits(
        wide_width in 2usize..64,
        narrow_fraction in 1usize..64,
        seed in any::<u64>(),
    ) {
        let narrow_width = (narrow_fraction % wide_width).max(1);
        let pattern = DataWord::from_u64(seed & ((1u64 << wide_width.min(63)) - 1), wide_width);
        let mut spc = SerialToParallelConverter::new(narrow_width);
        spc.deliver(&pattern, ShiftOrder::MsbFirst);
        prop_assert_eq!(spc.parallel_out(), pattern.truncated_lsb(narrow_width));
    }

    /// A PSC serialisation always reconstructs the captured response.
    #[test]
    fn psc_serialisation_round_trips(word in arb_word(33)) {
        let mut psc = ParallelToSerialConverter::new(33);
        let (bits, cycles) = psc.serialize(&word);
        prop_assert_eq!(cycles, 34);
        prop_assert_eq!(ParallelToSerialConverter::word_from_serial(&bits), word);
    }

    /// A fault-free memory passes any of the library March tests under
    /// any background, and the operation count matches the notation.
    #[test]
    fn fault_free_memory_passes_every_march_test(
        words in 1u64..32,
        width in 1usize..12,
        which in 0usize..3,
        background_index in 0usize..4,
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let mut sram = Sram::new(config);
        let test = match which {
            0 => algorithms::mats_plus(),
            1 => algorithms::march_c_minus(),
            _ => algorithms::with_nwrtm(&algorithms::march_c_minus()),
        };
        let background = match background_index {
            0 => DataBackground::Solid,
            1 => DataBackground::Checkerboard,
            2 => DataBackground::ColumnStripe,
            _ => DataBackground::Binary(1),
        };
        let outcome = MarchRunner::new().run_test(&mut sram, &test, background).unwrap();
        prop_assert!(outcome.passed());
        prop_assert_eq!(outcome.operations, test.operation_count(words));
    }

    /// Any single stuck-at fault anywhere is detected *and located* by
    /// March C−, and by the full proposed scheme end to end.
    #[test]
    fn any_stuck_at_fault_is_located(
        words in 2u64..24,
        width in 1usize..10,
        address_seed in any::<u64>(),
        bit_seed in any::<usize>(),
        value in any::<bool>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let coord = CellCoord::new(Address::new(address_seed % words), bit_seed % width);
        let fault = if value {
            MemoryFault::stuck_at_1(coord)
        } else {
            MemoryFault::stuck_at_0(coord)
        };

        // March-level simulation.
        let sim = FaultSimulator::new(config);
        let outcome = sim.simulate_fault(&algorithms::march_c_minus(), &fault, DataBackground::Solid);
        prop_assert!(outcome.detected);
        prop_assert!(outcome.located);

        // Full-scheme simulation.
        let mut memories = vec![MemoryUnderDiagnosis::with_faults(
            MemoryId::new(0),
            config,
            std::iter::once(fault).collect(),
        )
        .unwrap()];
        let result = FastScheme::new(10.0).diagnose(&mut memories).unwrap();
        let located = result.sites(MemoryId::new(0));
        prop_assert!(located.iter().any(|s| s.address == coord.address && s.bit == coord.bit));
    }

    /// The analytic reduction factor is monotone in the iteration count
    /// and always favours the proposed scheme for k >= 1.
    #[test]
    fn analytic_reduction_is_monotone_and_above_one(
        words in 16u64..2048,
        width in 4u64..128,
        k in 1u64..512,
    ) {
        let model = AnalyticModel::new(words, width, 10.0);
        prop_assert!(model.reduction_without_drf(k + 1) > model.reduction_without_drf(k));
        // Baseline serialises every operation by the width, so even a
        // single iteration is slower than the proposed scheme for any
        // geometry in this range.
        prop_assert!(model.baseline_cycles(k) > 0);
        prop_assert!(model.proposed_cycles() > 0);
        prop_assert!(model.reduction_with_drf(k, 200.0) > model.reduction_without_drf(k) * 0.9);
    }

    /// NWRTM never pauses and never loses classical coverage: any single
    /// transition fault is still located when the NWRC elements are
    /// merged in.
    #[test]
    fn nwrtm_merge_keeps_transition_fault_location(
        words in 2u64..16,
        width in 1usize..8,
        address_seed in any::<u64>(),
        bit_seed in any::<usize>(),
        up in any::<bool>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let coord = CellCoord::new(Address::new(address_seed % words), bit_seed % width);
        let fault = if up {
            MemoryFault::transition_up(coord)
        } else {
            MemoryFault::transition_down(coord)
        };
        let test = algorithms::with_nwrtm(&algorithms::march_c_minus());
        let sim = FaultSimulator::new(config);
        let outcome = sim.simulate_fault(&test, &fault, DataBackground::Solid);
        prop_assert!(outcome.detected);
        prop_assert!(outcome.located);
        prop_assert_eq!(outcome.run.pause_ms, 0.0);
    }
}
