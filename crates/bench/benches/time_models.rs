//! E1–E4: diagnosis-time models (Eq. 1–4) and the Sec. 4.2 case study,
//! plus a cycle-accurate simulated comparison of both schemes and the
//! SoA population-batching measurement points:
//!
//! * `fast_scheme_diagnose_512mem_soa` — end-to-end diagnosis of a
//!   512-memory SoC, tractable because the controller's golden state is
//!   one shared SoA store instead of 512 `Vec<DataWord>`s;
//! * `population_golden_soa_512mem` vs `population_golden_aos_512mem` —
//!   the golden-state maintenance alone, SoA [`GoldenStore`] against
//!   the frozen pre-SoA per-memory `Vec<DataWord>` layout, driven by
//!   the identical write/read stream (the entries proving the SoA win
//!   in the committed ledger).

use bench::{print_section, small_population};
use criterion::{criterion_group, criterion_main, Criterion};
use esram_diag::{
    AnalyticModel, CaseStudy, DataBackground, DataBackgroundGenerator, DiagnosisKernel, DiagnosisScheme,
    DrfMode, FastScheme, GoldenStore, HuangScheme, MarchSchedule, MemConfig, ShardPlan, Soc,
};
use sram_model::{Address, DataWord};
use std::hint::black_box;
use std::time::Duration;

/// Population size for the SoA measurement points.
const SOA_MEMORIES: usize = 512;

/// Geometry of the SoA population (the S1 scaled geometry).
fn soa_config() -> MemConfig {
    MemConfig::new(64, 16).expect("valid geometry")
}

/// The schedule the fast scheme runs for the SoA population.
fn soa_schedule() -> MarchSchedule {
    FastScheme::new(10.0).with_drf_mode(DrfMode::None).schedule(16)
}

/// Walks the schedule's write/read stream over the population's golden
/// state held in the SoA [`GoldenStore`]; returns a checksum of visited
/// expectations so the work cannot be optimised away.
fn golden_soa_stream(configs: &[MemConfig], schedule: &MarchSchedule) -> usize {
    let generator = DataBackgroundGenerator::new(16);
    let backgrounds: Vec<DataBackground> = schedule.phases().iter().map(|p| p.background).collect();
    let mut store = GoldenStore::new(configs, &generator, &backgrounds);
    let words = configs[0].words();
    let mut checksum = 0usize;
    for (phase_index, phase) in schedule.phases().iter().enumerate() {
        for element in phase.test.elements() {
            for global in 0..words {
                let global = Address::new(global);
                for op in &element.ops {
                    if op.is_write() {
                        store.record_write(phase_index, global, op.value().unwrap_or(false));
                    } else if op.is_read() {
                        for member in 0..configs.len() {
                            checksum = checksum.wrapping_add(store.expected_at(member, global).count_ones());
                        }
                    }
                }
            }
        }
    }
    checksum
}

/// The frozen pre-SoA layout: one golden `Vec<DataWord>` per memory,
/// per-element expectation words per memory, `clone_from` per write per
/// memory — exactly the controller state maintenance the fast scheme
/// performed before the SoA rewrite, driven by the same stream.
fn golden_aos_stream(configs: &[MemConfig], schedule: &MarchSchedule) -> usize {
    let generator = DataBackgroundGenerator::new(16);
    let mut golden: Vec<Vec<DataWord>> = configs
        .iter()
        .map(|c| vec![DataWord::zero(c.width()); c.words() as usize])
        .collect();
    let words = configs[0].words();
    let mut checksum = 0usize;
    for phase in schedule.phases() {
        let background = phase.background;
        for element in phase.test.elements() {
            let expected_by_value: Vec<Vec<DataWord>> = [false, true]
                .iter()
                .map(|&value| {
                    configs
                        .iter()
                        .map(|c| generator.pattern_for_width(background, value, c.width()))
                        .collect()
                })
                .collect();
            for global in 0..words {
                for op in &element.ops {
                    if op.is_write() {
                        let value = usize::from(op.value().unwrap_or(false));
                        for (index, memory_golden) in golden.iter_mut().enumerate() {
                            let local = (global % configs[index].words()) as usize;
                            memory_golden[local].clone_from(&expected_by_value[value][index]);
                        }
                    } else if op.is_read() {
                        for (index, memory_golden) in golden.iter().enumerate() {
                            let local = (global % configs[index].words()) as usize;
                            checksum = checksum.wrapping_add(memory_golden[local].count_ones());
                        }
                    }
                }
            }
        }
    }
    checksum
}

fn print_case_study() {
    print_section("E1-E4: Sec. 4.2 case study (n = 512, c = 100, t = 10 ns, 1 % defects)");
    let report = CaseStudy::date2005().evaluate();
    print!("{}", report.to_table());
    println!("paper: R >= 84 without DRFs, R >= 145 with DRFs");

    let model = AnalyticModel::date2005_benchmark();
    println!(
        "\nEq. (1) baseline cycles (k = 96): {}\nEq. (2) proposed cycles:          {}",
        model.baseline_cycles(96),
        model.proposed_cycles()
    );
}

fn print_simulated_comparison() {
    print_section("E1-E4 (simulated): cycle-accurate comparison on a shared defect population");
    println!(
        "{:<34} {:>14} {:>12} {:>10} {:>8}",
        "scheme", "cycles", "time (ms)", "located", "iters"
    );
    let mut rows = Vec::new();
    for (label, rate) in [
        ("0.5 % defects", 0.005),
        ("1 % defects", 0.01),
        ("2 % defects", 0.02),
    ] {
        let mut baseline_soc = small_population(4, 64, 16, rate, 42);
        let baseline = HuangScheme::new(10.0)
            .diagnose(baseline_soc.memories_mut())
            .expect("baseline run");
        let mut fast_soc = small_population(4, 64, 16, rate, 42);
        let fast = FastScheme::new(10.0)
            .with_drf_mode(DrfMode::None)
            .diagnose(fast_soc.memories_mut())
            .expect("fast run");
        println!(
            "{:<34} {:>14} {:>12.4} {:>10} {:>8}",
            format!("baseline [7,8], {label}"),
            baseline.cycles,
            baseline.time_ms(),
            baseline.located_count(),
            baseline.iterations
        );
        println!(
            "{:<34} {:>14} {:>12.4} {:>10} {:>8}",
            format!("proposed,       {label}"),
            fast.cycles,
            fast.time_ms(),
            fast.located_count(),
            fast.iterations
        );
        rows.push((label, fast.speedup_versus(&baseline)));
    }
    println!();
    for (label, reduction) in rows {
        println!("simulated reduction factor R at {label}: {reduction:.1}");
    }
}

fn bench_time_models(c: &mut Criterion) {
    print_case_study();
    print_simulated_comparison();

    let mut group = c.benchmark_group("time_models");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    group.bench_function("analytic_case_study", |b| {
        b.iter(|| black_box(CaseStudy::date2005().evaluate()))
    });

    group.bench_function("fast_scheme_diagnose_4x64x16", |b| {
        b.iter_batched(
            || small_population(4, 64, 16, 0.01, 42),
            |mut soc| {
                let result = FastScheme::new(10.0)
                    .with_drf_mode(DrfMode::None)
                    .diagnose(soc.memories_mut())
                    .expect("fast run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("huang_scheme_diagnose_4x64x16", |b| {
        b.iter_batched(
            || small_population(4, 64, 16, 0.01, 42),
            |mut soc| {
                let result = HuangScheme::new(10.0)
                    .diagnose(soc.memories_mut())
                    .expect("baseline run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // SoA population batching: a 512-memory SoC end to end, plus the
    // golden-state maintenance in isolation (SoA vs frozen AoS layout).
    let configs = vec![soa_config(); SOA_MEMORIES];
    let schedule = soa_schedule();
    assert_eq!(
        golden_soa_stream(&configs, &schedule),
        golden_aos_stream(&configs, &schedule),
        "SoA and AoS golden maintenance must visit identical expectations"
    );
    group.bench_function("fast_scheme_diagnose_512mem_soa", |b| {
        b.iter_batched(
            || small_population(SOA_MEMORIES, 64, 16, 0.0005, 42),
            |mut soc| {
                let result = FastScheme::new(10.0)
                    .with_drf_mode(DrfMode::None)
                    .diagnose(soc.memories_mut())
                    .expect("fast run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("population_golden_soa_512mem", |b| {
        b.iter(|| black_box(golden_soa_stream(&configs, &schedule)))
    });
    group.bench_function("population_golden_aos_512mem", |b| {
        b.iter(|| black_box(golden_aos_stream(&configs, &schedule)))
    });

    // Population sharding + parallel SoC construction: the 512-memory
    // diagnosis under the frozen sequential comparator plan vs the
    // library plan (`ESRAM_DIAG_THREADS`-overridable; CI pins it to 1
    // so the perf gate compares like with like), and SoC construction
    // at population scale under both plans. On a multi-core runner the
    // `_sharded` entries scale with the worker count while the
    // `_sequential` comparators freeze the single-thread walk.
    // The per-memory oracle kernel on the same population: the committed
    // pair documents the bit-parallel kernel's speedup, and the gap
    // collapsing is the first sign the fast path silently degraded to
    // dense stepping.
    group.bench_function("fast_scheme_diagnose_512mem_permem", |b| {
        b.iter_batched(
            || small_population(SOA_MEMORIES, 64, 16, 0.0005, 42),
            |mut soc| {
                let result = FastScheme::new(10.0)
                    .with_drf_mode(DrfMode::None)
                    .with_kernel(DiagnosisKernel::PerMemory)
                    .diagnose_with(ShardPlan::sequential(), soc.memories_mut())
                    .expect("fast run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("fast_scheme_diagnose_512mem_sequential", |b| {
        b.iter_batched(
            || small_population(SOA_MEMORIES, 64, 16, 0.0005, 42),
            |mut soc| {
                let result = FastScheme::new(10.0)
                    .with_drf_mode(DrfMode::None)
                    .diagnose_with(ShardPlan::sequential(), soc.memories_mut())
                    .expect("fast run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("fast_scheme_diagnose_512mem_sharded", |b| {
        b.iter_batched(
            || small_population(SOA_MEMORIES, 64, 16, 0.0005, 42),
            |mut soc| {
                let result = FastScheme::new(10.0)
                    .with_drf_mode(DrfMode::None)
                    .diagnose_with(ShardPlan::from_env(), soc.memories_mut())
                    .expect("fast run");
                black_box(result.cycles)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    let build_512 = |plan: ShardPlan| {
        let soc = Soc::builder()
            .memories(SOA_MEMORIES, 64, 16)
            .expect("valid geometry")
            .defect_rate(0.0005)
            .seed(42)
            .spares(32)
            .build_with(plan)
            .expect("population builds");
        soc.injected_faults()
    };
    group.bench_function("soc_build_512mem_sequential", |b| {
        b.iter(|| black_box(build_512(ShardPlan::sequential())))
    });
    group.bench_function("soc_build_512mem_sharded", |b| {
        b.iter(|| black_box(build_512(ShardPlan::from_env())))
    });

    group.finish();
}

criterion_group!(benches, bench_time_models);
criterion_main!(benches);
