//! Fleet-scale batched diagnosis: many independent SoC jobs through
//! **one** deterministic executor run.
//!
//! Silicon bring-up rarely diagnoses one SoC at a time — a
//! characterisation lot is dozens of dies (or dozens of candidate
//! configurations of one die), each an independent job: build the
//! population, plan the controller's schedule, replay it over every
//! memory. Running jobs serially leaves the executor idle at every
//! job boundary: a job with one small memory cannot use more than one
//! worker no matter how many the plan offers.
//!
//! The fleet runner removes those boundaries. It flattens every job's
//! shardable work items into one global work list per phase and lets
//! the cost-weighted (or stealing) executor split the *combined* list,
//! so a worker that finishes its share of one job's memories
//! immediately continues into the next job's:
//!
//! 1. **Build** — every `(job, member)` pair becomes one item of a
//!    single [`ShardPlan::map_slots`] run, weighted by the calibrated
//!    build cost of the member's cell count. A member's defects are a
//!    pure function of `(job seed, member index, geometry)`, so the
//!    batched build is bit-identical to each job building alone.
//! 2. **Plan** — each job's [`FastScheme`] plans its population once
//!    ([`FastScheme::plan_population`]): schedule, delivered patterns,
//!    Eq. (2) cycle accounting, kernel decision, calibration snapshot.
//!    Planning is controller work, independent of sharding.
//! 3. **Diagnose** — every memory of every job becomes one item of a
//!    single [`run_segments`](ShardPlan::run_segments) run, weighted
//!    by its job's calibrated [`member_cost`](PopulationPlan::member_cost).
//!    A segment may span jobs; the worker replays each job-contiguous
//!    chunk through that job's [`PopulationPlan::run_segment`] and the
//!    outcomes are demultiplexed back per job and merged
//!    ([`PopulationPlan::merge`]) in member order.
//!
//! Determinism is inherited, not re-proved: the executor returns
//! results in exact item order for every strategy and worker count,
//! and `merge` reassembles segment outcomes by global operation
//! sequence number regardless of where segment boundaries fell — so
//! each job's [`DiagnosisResult`] is byte-identical to what
//! [`FastScheme::diagnose_with`] produces for that job alone, under
//! any plan. Calibration (measured, hand-tuned or online) moves only
//! the shard *boundaries*, never the results. The fleet determinism
//! suite asserts both properties across strategies, worker counts and
//! kernels.
//!
//! # Fault domains
//!
//! Each job is its own fault domain. [`FleetRunner::run`] returns one
//! [`JobOutcome`] per job: a job whose plan, build or diagnosis
//! panicked, errored or hit an armed failpoint fails with a structured
//! [`FleetError`] naming the [`FleetPhase`], while every *other* job's
//! outcome stays byte-identical to its solo run at any strategy ×
//! worker count × kernel — which the chaos suite asserts by poisoning
//! one job at a time. Only fleet-global conditions (a cancelled
//! [`RunToken`], an expired deadline) fail the whole call. The
//! instrumented failpoint sites are `soc.build` (qualified by `job` and
//! `member`) and `diag.segment` (qualified by `job`).

use crate::soc::Soc;
use crate::SocBuilder;
use bisd::{DiagnosisResult, FastScheme, MemoryUnderDiagnosis, PopulationPlan, SegmentOutcome};
use fault_models::DefectProfile;
use march::shard::{failpoint, panic_payload, CostCalibration, CostDomain, ExecError, ItemFault, RunToken};
use march::ShardPlan;
use sram_model::{MemError, MemoryId, Sram};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One independent diagnosis job: a population to build and the scheme
/// to diagnose it with.
#[derive(Debug, Clone)]
pub struct FleetJob {
    builder: SocBuilder,
    scheme: FastScheme,
}

impl FleetJob {
    /// Pairs a population builder with the scheme that will diagnose it.
    pub fn new(builder: SocBuilder, scheme: FastScheme) -> Self {
        FleetJob { builder, scheme }
    }

    /// The job's population builder.
    pub fn builder(&self) -> &SocBuilder {
        &self.builder
    }

    /// The job's diagnosis scheme.
    pub fn scheme(&self) -> &FastScheme {
        &self.scheme
    }
}

/// Everything the fleet computes *before* any memory is touched: each
/// job's [`PopulationPlan`] plus the flattened global work list with
/// its calibrated per-item costs.
///
/// Built by [`FleetRunner::plan`]; the cost accessors let the
/// throughput benchmark model the executor's critical path without
/// running it.
#[derive(Debug)]
pub struct FleetPlan {
    jobs: Vec<FleetJob>,
    populations: Vec<PopulationPlan>,
    /// Flattened `(job, member)` pairs, job-major, member order.
    members: Vec<(usize, usize)>,
}

impl FleetPlan {
    /// Number of jobs in the fleet.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Total number of memories across all jobs.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The owning job of every flattened member, in global item order.
    pub fn member_jobs(&self) -> Vec<usize> {
        self.members.iter().map(|&(job, _)| job).collect()
    }

    /// Calibrated diagnosis cost of every flattened member, in global
    /// item order — exactly the weights the diagnose phase hands the
    /// executor's cost-aware strategies.
    pub fn member_costs(&self) -> Vec<u64> {
        self.members
            .iter()
            .map(|&(job, member)| self.populations[job].member_cost(member))
            .collect()
    }

    /// Calibrated build cost of every flattened member, in global item
    /// order — the weights of the batched build phase.
    pub fn build_costs(&self) -> Vec<u64> {
        let calibration = CostCalibration::current();
        self.members
            .iter()
            .map(|&(job, member)| {
                let cells = self.jobs[job].builder.member_configs()[member].cells();
                calibration.cost(CostDomain::SocBuild, cells)
            })
            .collect()
    }

    /// Job `job`'s population plan.
    pub fn population_plan(&self, job: usize) -> &PopulationPlan {
        &self.populations[job]
    }
}

/// One job's finished output: the built (and now diagnosed) population
/// and its diagnosis result.
#[derive(Debug)]
pub struct FleetOutcome {
    soc: Soc,
    result: DiagnosisResult,
}

impl FleetOutcome {
    /// The job's built population.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// The job's diagnosis result.
    pub fn result(&self) -> &DiagnosisResult {
        &self.result
    }

    /// Scores the diagnosis against the population's injected ground
    /// truth.
    pub fn score(&self) -> crate::DiagnosisScore {
        self.soc.score(&self.result)
    }

    /// Decomposes into the population and the result.
    pub fn into_parts(self) -> (Soc, DiagnosisResult) {
        (self.soc, self.result)
    }
}

/// The pipeline phase a per-job failure occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPhase {
    /// Controller planning ([`FastScheme::plan_population`]).
    Plan,
    /// Population construction (the batched build).
    Build,
    /// Schedule replay (the batched diagnosis).
    Diagnose,
}

impl fmt::Display for FleetPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetPhase::Plan => write!(f, "plan"),
            FleetPhase::Build => write!(f, "build"),
            FleetPhase::Diagnose => write!(f, "diagnose"),
        }
    }
}

/// Why a job (or, for [`FleetError::Cancelled`] / [`FleetError::Deadline`],
/// the whole fleet run) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// The memory model rejected the job's configuration or an
    /// operation on one of its members.
    Memory(MemError),
    /// The job's work panicked in the named phase; the panic was
    /// contained to the job and the payload is carried as a string.
    Panicked {
        /// Phase the panic occurred in.
        phase: FleetPhase,
        /// The panic payload rendered as a string.
        payload: String,
    },
    /// An armed failpoint injected an error into the job.
    Injected {
        /// Phase the injection occurred in.
        phase: FleetPhase,
        /// The failpoint site that fired.
        site: String,
    },
    /// The runner's [`RunToken`] was cancelled — a fleet-global
    /// failure, reported through [`FleetRunner::run`]'s outer `Result`.
    Cancelled,
    /// The runner's [`RunToken`] deadline passed — fleet-global, like
    /// [`FleetError::Cancelled`].
    Deadline,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Memory(error) => write!(f, "memory model error: {error}"),
            FleetError::Panicked { phase, payload } => {
                write!(f, "job panicked during {phase}: {payload}")
            }
            FleetError::Injected { phase, site } => {
                write!(f, "injected failure during {phase} at {site}")
            }
            FleetError::Cancelled => write!(f, "fleet run cancelled"),
            FleetError::Deadline => write!(f, "fleet run deadline exceeded"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MemError> for FleetError {
    fn from(error: MemError) -> Self {
        FleetError::Memory(error)
    }
}

impl FleetError {
    /// Maps a run-level executor failure into the fleet taxonomy. A
    /// worker panic at this level means the panic escaped the per-job
    /// containment (e.g. a cost closure panicked) — still contained,
    /// reported as a fleet-global [`FleetError::Panicked`].
    fn from_exec(phase: FleetPhase, error: ExecError) -> FleetError {
        match error {
            ExecError::Cancelled => FleetError::Cancelled,
            ExecError::Deadline => FleetError::Deadline,
            ExecError::WorkerPanic { payload, .. } => FleetError::Panicked { phase, payload },
            // ExecError is non_exhaustive; render any future variant.
            other => FleetError::Panicked {
                phase,
                payload: other.to_string(),
            },
        }
    }
}

/// One job's verdict from [`FleetRunner::run`]: the finished
/// [`FleetOutcome`], or the structured reason this job (alone) failed.
pub type JobOutcome = Result<FleetOutcome, FleetError>;

/// A build-phase item failure, before it is demultiplexed onto its job.
enum BuildFault {
    Memory(MemError),
    Injected(String),
}

/// A diagnose-phase chunk failure, before it is demultiplexed onto its
/// job.
enum ChunkFault {
    Memory(MemError),
    Injected(String),
    Panicked(String),
}

/// One flattened diagnosis work item: a borrowed memory tagged with its
/// owning job and its member index within that job.
#[derive(Debug)]
struct MemberSlot<'a> {
    job: usize,
    member: usize,
    id: MemoryId,
    sram: &'a mut Sram,
}

/// Batched runner for N independent jobs under one [`ShardPlan`].
///
/// See the [module documentation](self) for the three-phase pipeline,
/// the determinism argument and the per-job fault domains. Cloning the
/// runner shares its [`RunToken`]: cancelling one clone's token cancels
/// them all.
#[derive(Debug, Clone, Default)]
pub struct FleetRunner {
    shard: ShardPlan,
    token: RunToken,
}

impl FleetRunner {
    /// A runner executing under the given shard plan (strategy and
    /// worker count apply to the *combined* work list of all jobs),
    /// with a fresh never-cancelling [`RunToken`].
    pub fn new(shard: ShardPlan) -> Self {
        FleetRunner {
            shard,
            token: RunToken::new(),
        }
    }

    /// Replaces the runner's cancellation token: [`FleetRunner::run`]
    /// checks it at item/segment boundaries and fails fleet-globally
    /// with [`FleetError::Cancelled`] / [`FleetError::Deadline`] — with
    /// clean teardown, so the jobs can be re-run with a fresh token.
    pub fn with_token(mut self, token: RunToken) -> Self {
        self.token = token;
        self
    }

    /// The shard plan the runner executes under.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shard
    }

    /// The runner's cancellation token.
    pub fn token(&self) -> &RunToken {
        &self.token
    }

    /// Builds, plans and diagnoses every job in one batched pipeline
    /// and returns one [`JobOutcome`] per job, in job order — each job
    /// its own fault domain.
    ///
    /// A job whose plan, build or diagnosis fails (memory-model error,
    /// contained panic, armed failpoint) comes back as
    /// `Err(`[`FleetError`]`)` in its slot and is excluded from later
    /// phases; every **other** job's outcome is byte-identical to its
    /// solo run at any strategy, worker count and kernel. The outer
    /// `Result` fails only on fleet-global conditions: the runner's
    /// [`RunToken`] was cancelled or timed out, or a panic escaped the
    /// per-job containment.
    ///
    /// Degenerate inputs are well-defined, not special-cased
    /// downstream: **zero jobs** returns an empty vector without
    /// touching the executor, and **one job under many workers**
    /// degrades to exactly [`FastScheme::diagnose_with`] — the
    /// flattened work list is that job's member list, so surplus
    /// workers idle and the output is the single-job output.
    ///
    /// # Errors
    ///
    /// [`FleetError::Cancelled`] / [`FleetError::Deadline`] when the
    /// token stopped the run; [`FleetError::Panicked`] if a panic
    /// escaped the per-job containment (a bug, not a job fault).
    pub fn run(&self, jobs: &[FleetJob]) -> Result<Vec<JobOutcome>, FleetError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let mut job_errors: Vec<Option<FleetError>> = vec![None; jobs.len()];

        // Phase 1 — plan, each job's controller work under its own
        // containment. An empty population is the per-job equivalent of
        // the solo builder's InvalidConfig rejection.
        let mut populations: Vec<Option<PopulationPlan>> = Vec::with_capacity(jobs.len());
        for (job, fleet_job) in jobs.iter().enumerate() {
            self.token
                .check()
                .map_err(|error| FleetError::from_exec(FleetPhase::Plan, error))?;
            let configs = fleet_job.builder.member_configs();
            if configs.is_empty() {
                job_errors[job] = Some(FleetError::Memory(MemError::InvalidConfig { words: 0, width: 0 }));
                populations.push(None);
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| fleet_job.scheme.plan_population(configs))) {
                Ok(population) => populations.push(Some(population)),
                Err(payload) => {
                    job_errors[job] = Some(FleetError::Panicked {
                        phase: FleetPhase::Plan,
                        payload: panic_payload(payload.as_ref()),
                    });
                    populations.push(None);
                }
            }
        }

        // Phase 2 — build every healthy job's members in one isolated
        // executor run: a panicking or erroring member fails only its
        // own job.
        let profiles: Vec<DefectProfile> = jobs
            .iter()
            .map(|fleet_job| fleet_job.builder.defect_profile())
            .collect();
        let members: Vec<(usize, usize)> = jobs
            .iter()
            .enumerate()
            .filter(|&(job, _)| job_errors[job].is_none())
            .flat_map(|(job, fleet_job)| {
                (0..fleet_job.builder.member_configs().len()).map(move |member| (job, member))
            })
            .collect();
        let calibration = CostCalibration::current();
        let built = self
            .shard
            .with_domain(CostDomain::SocBuild)
            .map_slots_isolated(
                &self.token,
                &members,
                |_, &(job, member)| {
                    let cells = jobs[job].builder.member_configs()[member].cells();
                    calibration.cost(CostDomain::SocBuild, cells)
                },
                || (),
                |_, _, &(job, member)| {
                    failpoint::fire("soc.build", &[("job", job as u64), ("member", member as u64)])
                        .map_err(|injected| BuildFault::Injected(injected.site))?;
                    let builder = jobs[job].builder();
                    builder
                        .build_member(&profiles[job], member, builder.member_configs()[member])
                        .map_err(BuildFault::Memory)
                },
            )
            .map_err(|error| FleetError::from_exec(FleetPhase::Build, error))?;
        let mut built_members: Vec<Vec<MemoryUnderDiagnosis>> = jobs.iter().map(|_| Vec::new()).collect();
        for (&(job, _), slot) in members.iter().zip(built) {
            if job_errors[job].is_some() {
                // The job already failed on an earlier member (first
                // fault in item order wins); drop later results.
                continue;
            }
            match slot {
                Ok(member) => built_members[job].push(member),
                Err(ItemFault::Error(BuildFault::Injected(site))) => {
                    job_errors[job] = Some(FleetError::Injected {
                        phase: FleetPhase::Build,
                        site,
                    });
                }
                Err(ItemFault::Error(BuildFault::Memory(error))) => {
                    job_errors[job] = Some(FleetError::Memory(error));
                }
                Err(ItemFault::Panic { payload }) => {
                    job_errors[job] = Some(FleetError::Panicked {
                        phase: FleetPhase::Build,
                        payload,
                    });
                }
            }
        }
        let mut socs: Vec<Option<Soc>> = built_members
            .into_iter()
            .zip(&job_errors)
            .map(|(members, error)| {
                (error.is_none() && !members.is_empty()).then(|| Soc::from_memories(members))
            })
            .collect();

        // Phase 3 — diagnose every surviving job's members in one
        // executor run. Job-contiguous chunks are each run under their
        // own containment, so a chunk never spans a fault domain.
        let mut slots: Vec<MemberSlot<'_>> = Vec::new();
        for (job, soc) in socs.iter_mut().enumerate() {
            let Some(soc) = soc.as_mut() else { continue };
            for (member, memory) in soc.memories_mut().iter_mut().enumerate() {
                slots.push(MemberSlot {
                    job,
                    member,
                    id: memory.id,
                    sram: &mut memory.sram,
                });
            }
        }
        let groups: Vec<Vec<(usize, Result<SegmentOutcome, ChunkFault>)>> = self
            .shard
            .with_domain(CostDomain::Diagnosis)
            .try_run_segments(
                &self.token,
                &mut slots,
                |_, slot| {
                    populations[slot.job]
                        .as_ref()
                        .expect("a job with diagnosis slots has a plan")
                        .member_cost(slot.member)
                },
                |_, segment| {
                    let mut outcomes = Vec::new();
                    let mut rest = segment;
                    while !rest.is_empty() {
                        let job = rest[0].job;
                        let len = rest.iter().take_while(|slot| slot.job == job).count();
                        let (chunk, tail) = rest.split_at_mut(len);
                        let base = chunk[0].member;
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            failpoint::fire("diag.segment", &[("job", job as u64)])
                                .map_err(|injected| ChunkFault::Injected(injected.site))?;
                            let mut pairs: Vec<(MemoryId, &mut Sram)> =
                                chunk.iter_mut().map(|slot| (slot.id, &mut *slot.sram)).collect();
                            populations[job]
                                .as_ref()
                                .expect("a job with diagnosis slots has a plan")
                                .run_segment(base, &mut pairs)
                                .map_err(ChunkFault::Memory)
                        }));
                        let outcome = match caught {
                            Ok(result) => result,
                            Err(payload) => Err(ChunkFault::Panicked(panic_payload(payload.as_ref()))),
                        };
                        outcomes.push((job, outcome));
                        rest = tail;
                    }
                    outcomes
                },
            )
            .map_err(|error| FleetError::from_exec(FleetPhase::Diagnose, error))?;
        let mut per_job: Vec<Vec<SegmentOutcome>> = jobs.iter().map(|_| Vec::new()).collect();
        for group in groups {
            for (job, outcome) in group {
                if job_errors[job].is_some() {
                    continue;
                }
                match outcome {
                    Ok(segment) => per_job[job].push(segment),
                    Err(ChunkFault::Memory(error)) => {
                        job_errors[job] = Some(FleetError::Memory(error));
                    }
                    Err(ChunkFault::Injected(site)) => {
                        job_errors[job] = Some(FleetError::Injected {
                            phase: FleetPhase::Diagnose,
                            site,
                        });
                    }
                    Err(ChunkFault::Panicked(payload)) => {
                        job_errors[job] = Some(FleetError::Panicked {
                            phase: FleetPhase::Diagnose,
                            payload,
                        });
                    }
                }
            }
        }

        Ok(job_errors
            .into_iter()
            .zip(per_job)
            .zip(socs)
            .enumerate()
            .map(|(job, ((error, outcomes), soc))| match error {
                Some(error) => Err(error),
                None => {
                    let soc = soc.expect("a healthy job has a built population");
                    let result = populations[job]
                        .as_ref()
                        .expect("a healthy job has a plan")
                        .merge(outcomes);
                    Ok(FleetOutcome { soc, result })
                }
            })
            .collect())
    }

    /// All-or-nothing convenience over [`FleetRunner::run`]: returns
    /// every job's [`FleetOutcome`] when every job succeeded, or the
    /// first failing job's [`FleetError`] (in job order) otherwise.
    ///
    /// # Errors
    ///
    /// The first per-job [`FleetError`], or a fleet-global
    /// [`FleetError::Cancelled`] / [`FleetError::Deadline`].
    pub fn run_all(&self, jobs: &[FleetJob]) -> Result<Vec<FleetOutcome>, FleetError> {
        self.run(jobs)?.into_iter().collect()
    }

    /// Plans every job (phase 2 of the pipeline) without building or
    /// diagnosing anything. Zero jobs yields an empty plan.
    ///
    /// # Errors
    ///
    /// Returns an error if any job's builder holds no memories (the
    /// same `InvalidConfig` a solo [`SocBuilder::build`] reports).
    pub fn plan(&self, jobs: &[FleetJob]) -> Result<FleetPlan, MemError> {
        let mut members = Vec::new();
        for (job, fleet_job) in jobs.iter().enumerate() {
            let configs = fleet_job.builder.member_configs();
            if configs.is_empty() {
                return Err(MemError::InvalidConfig { words: 0, width: 0 });
            }
            members.extend((0..configs.len()).map(|member| (job, member)));
        }
        let populations = jobs
            .iter()
            .map(|fleet_job| {
                fleet_job
                    .scheme
                    .plan_population(fleet_job.builder.member_configs())
            })
            .collect();
        Ok(FleetPlan {
            jobs: jobs.to_vec(),
            populations,
            members,
        })
    }

    /// Builds every job's population through one batched executor run
    /// (phase 1) and returns the populations in job order — each
    /// bit-identical to its job building alone, for every strategy and
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns an error if injection fails for any member.
    pub fn build(&self, plan: &FleetPlan) -> Result<Vec<Soc>, MemError> {
        if plan.jobs.is_empty() {
            return Ok(Vec::new());
        }
        let profiles: Vec<DefectProfile> = plan
            .jobs
            .iter()
            .map(|fleet_job| fleet_job.builder.defect_profile())
            .collect();
        let calibration = CostCalibration::current();
        let built: Vec<Result<MemoryUnderDiagnosis, MemError>> =
            self.shard.with_domain(CostDomain::SocBuild).map_slots(
                &plan.members,
                |_, &(job, member)| {
                    let cells = plan.jobs[job].builder.member_configs()[member].cells();
                    calibration.cost(CostDomain::SocBuild, cells)
                },
                || (),
                |_, _, &(job, member)| {
                    let builder = plan.jobs[job].builder();
                    builder.build_member(&profiles[job], member, builder.member_configs()[member])
                },
            );
        let mut socs: Vec<Vec<MemoryUnderDiagnosis>> = plan.jobs.iter().map(|_| Vec::new()).collect();
        for (&(job, _), member) in plan.members.iter().zip(built) {
            socs[job].push(member?);
        }
        Ok(socs.into_iter().map(Soc::from_memories).collect())
    }

    /// Diagnoses every job's population through one batched executor
    /// run (phase 3) and returns the per-job results in job order.
    ///
    /// # Errors
    ///
    /// Returns an error on memory-model validation failures (which
    /// indicate a bug in the scheme, not in the populations).
    ///
    /// # Panics
    ///
    /// Panics if `socs` does not match the plan — same job count and,
    /// per job, the exact geometries the plan was built for (a plan
    /// replayed over a different population would compare against the
    /// wrong golden expectations).
    pub fn diagnose(&self, plan: &FleetPlan, socs: &mut [Soc]) -> Result<Vec<DiagnosisResult>, MemError> {
        assert_eq!(
            socs.len(),
            plan.jobs.len(),
            "fleet plan and population count must match"
        );
        for (job, soc) in socs.iter().enumerate() {
            assert_eq!(
                soc.configs(),
                plan.jobs[job].builder.member_configs(),
                "job {job}: population geometries must match the plan"
            );
        }
        if plan.jobs.is_empty() {
            return Ok(Vec::new());
        }
        let populations = &plan.populations;
        let mut slots: Vec<MemberSlot<'_>> = Vec::new();
        for (job, soc) in socs.iter_mut().enumerate() {
            for (member, memory) in soc.memories_mut().iter_mut().enumerate() {
                slots.push(MemberSlot {
                    job,
                    member,
                    id: memory.id,
                    sram: &mut memory.sram,
                });
            }
        }

        // One global run over all jobs' members. A segment may span
        // several jobs; each job-contiguous chunk replays through its
        // own population plan with the chunk's first member index as
        // the segment base.
        let groups: Vec<Vec<(usize, Result<SegmentOutcome, MemError>)>> =
            self.shard.with_domain(CostDomain::Diagnosis).run_segments(
                &mut slots,
                |_, slot| populations[slot.job].member_cost(slot.member),
                |_, segment| {
                    let mut outcomes = Vec::new();
                    let mut rest = segment;
                    while !rest.is_empty() {
                        let job = rest[0].job;
                        let len = rest.iter().take_while(|slot| slot.job == job).count();
                        let (chunk, tail) = rest.split_at_mut(len);
                        let base = chunk[0].member;
                        let mut pairs: Vec<(MemoryId, &mut Sram)> =
                            chunk.iter_mut().map(|slot| (slot.id, &mut *slot.sram)).collect();
                        outcomes.push((job, populations[job].run_segment(base, &mut pairs)));
                        rest = tail;
                    }
                    outcomes
                },
            );

        // Segments come back in item order and chunks within a segment
        // preserve it too, so each job's outcomes land in member order
        // — exactly what `merge`'s stable sequence sort expects.
        let mut per_job: Vec<Vec<SegmentOutcome>> = plan.jobs.iter().map(|_| Vec::new()).collect();
        for group in groups {
            for (job, outcome) in group {
                per_job[job].push(outcome?);
            }
        }
        Ok(per_job
            .into_iter()
            .enumerate()
            .map(|(job, outcomes)| populations[job].merge(outcomes))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march::ShardStrategy;

    fn mixed_jobs() -> Vec<FleetJob> {
        let mut jobs = Vec::new();
        for seed in 0..3u64 {
            jobs.push(FleetJob::new(
                Soc::builder()
                    .memory(64, 16)
                    .unwrap()
                    .memories(2, 32, 8)
                    .unwrap()
                    .defect_rate(0.02)
                    .seed(seed),
                FastScheme::new(10.0),
            ));
        }
        jobs.push(FleetJob::new(
            Soc::builder()
                .memories(4, 128, 20)
                .unwrap()
                .defect_rate(0.01)
                .seed(99),
            FastScheme::new(10.0),
        ));
        jobs
    }

    fn serial_baseline(jobs: &[FleetJob]) -> Vec<(Soc, DiagnosisResult)> {
        jobs.iter()
            .map(|job| {
                let mut soc = job
                    .builder()
                    .clone()
                    .build_with(ShardPlan::with_threads(1))
                    .unwrap();
                let result = job
                    .scheme()
                    .diagnose_with(ShardPlan::with_threads(1), soc.memories_mut())
                    .unwrap();
                (soc, result)
            })
            .collect()
    }

    #[test]
    fn zero_jobs_is_an_empty_fleet() {
        let runner = FleetRunner::new(ShardPlan::with_threads(8));
        assert!(runner.run(&[]).unwrap().is_empty());
        assert!(runner.run_all(&[]).unwrap().is_empty());
        let plan = runner.plan(&[]).unwrap();
        assert_eq!(plan.job_count(), 0);
        assert_eq!(plan.member_count(), 0);
        assert!(runner.build(&plan).unwrap().is_empty());
        assert!(runner.diagnose(&plan, &mut []).unwrap().is_empty());
    }

    #[test]
    fn empty_job_is_rejected_like_a_solo_build() {
        let job = FleetJob::new(Soc::builder(), FastScheme::new(10.0));
        let runner = FleetRunner::default();
        assert!(runner.run_all(std::slice::from_ref(&job)).is_err());
        // The fault stays in the empty job's own domain.
        let outcomes = runner.run(std::slice::from_ref(&job)).unwrap();
        assert!(matches!(
            outcomes[0],
            Err(FleetError::Memory(MemError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn empty_job_fails_alone_among_healthy_neighbours() {
        let mut jobs = mixed_jobs();
        jobs.insert(1, FleetJob::new(Soc::builder(), FastScheme::new(10.0)));
        let runner = FleetRunner::new(ShardPlan::with_threads(7));
        let outcomes = runner.run(&jobs).unwrap();
        assert!(matches!(
            outcomes[1],
            Err(FleetError::Memory(MemError::InvalidConfig { .. }))
        ));
        // The healthy jobs around it are untouched by the failure.
        let healthy: Vec<&FleetJob> = jobs
            .iter()
            .enumerate()
            .filter(|&(index, _)| index != 1)
            .map(|(_, job)| job)
            .collect();
        let baseline: Vec<FleetJob> = healthy.iter().map(|&job| job.clone()).collect();
        let baseline = serial_baseline(&baseline);
        for (outcome, (_, result)) in outcomes
            .iter()
            .enumerate()
            .filter(|&(index, _)| index != 1)
            .map(|(_, outcome)| outcome)
            .zip(&baseline)
        {
            assert_eq!(outcome.as_ref().unwrap().result(), result);
        }
    }

    #[test]
    fn cancelled_runner_fails_fleet_globally() {
        let jobs = mixed_jobs();
        let token = RunToken::new();
        token.cancel();
        let runner = FleetRunner::new(ShardPlan::with_threads(7)).with_token(token);
        assert_eq!(runner.run(&jobs).unwrap_err(), FleetError::Cancelled);
        // Clean teardown: the same jobs re-run fine under a fresh token.
        let fresh = FleetRunner::new(ShardPlan::with_threads(7));
        assert_eq!(fresh.run_all(&jobs).unwrap().len(), jobs.len());
    }

    #[test]
    fn one_job_under_many_workers_matches_the_solo_run() {
        let jobs = vec![FleetJob::new(
            Soc::builder()
                .memories(3, 64, 12)
                .unwrap()
                .defect_rate(0.02)
                .seed(7),
            FastScheme::new(10.0),
        )];
        let baseline = serial_baseline(&jobs);
        let runner = FleetRunner::new(ShardPlan::with_threads(32));
        let outcomes = runner.run_all(&jobs).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].result(), &baseline[0].1);
        assert_eq!(
            outcomes[0].soc().injected_faults(),
            baseline[0].0.injected_faults()
        );
    }

    #[test]
    fn batched_fleet_matches_per_job_serial_runs() {
        let jobs = mixed_jobs();
        let baseline = serial_baseline(&jobs);
        for strategy in ShardStrategy::all() {
            let runner = FleetRunner::new(ShardPlan::with_threads(7).with_strategy(strategy));
            let outcomes = runner.run_all(&jobs).unwrap();
            assert_eq!(outcomes.len(), jobs.len());
            for (outcome, (soc, result)) in outcomes.iter().zip(&baseline) {
                assert_eq!(outcome.result(), result, "{strategy:?}");
                assert_eq!(outcome.soc().injected_faults(), soc.injected_faults());
            }
        }
    }

    #[test]
    fn plan_exposes_the_flattened_cost_model() {
        let jobs = mixed_jobs();
        let plan = FleetRunner::default().plan(&jobs).unwrap();
        assert_eq!(plan.job_count(), jobs.len());
        assert_eq!(plan.member_count(), 3 * 3 + 4);
        let member_jobs = plan.member_jobs();
        assert_eq!(member_jobs.len(), plan.member_count());
        assert!(
            member_jobs.windows(2).all(|pair| pair[0] <= pair[1]),
            "job-major order"
        );
        assert_eq!(plan.member_costs().len(), plan.member_count());
        assert_eq!(plan.build_costs().len(), plan.member_count());
        assert!(plan.member_costs().iter().all(|&cost| cost > 0));
        assert!(plan.build_costs().iter().all(|&cost| cost > 0));
        assert_eq!(plan.population_plan(3).member_count(), 4);
    }
}
