//! Backup (spare) memory used to repair diagnosed faulty words.
//!
//! Both the baseline architecture ([7,8], Fig. 1) and the proposed
//! scheme keep a small backup memory next to each e-SRAM so that, once
//! the BISD controller has located a faulty cell, the affected word can
//! be remapped to a spare ("registered for on-chip repair"). This module
//! models word-level spare allocation and the resulting repaired view of
//! the memory.

use crate::array::Sram;
use crate::config::{Address, MemConfig};
use crate::error::MemError;
use crate::word::DataWord;
use std::collections::BTreeMap;

/// Outcome of attempting to repair a set of faulty addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Addresses that were successfully remapped to spare words.
    pub repaired: Vec<Address>,
    /// Addresses left unrepaired because the spares ran out.
    pub unrepaired: Vec<Address>,
}

impl RepairOutcome {
    /// True if every requested address received a spare.
    pub fn is_fully_repaired(&self) -> bool {
        self.unrepaired.is_empty()
    }

    /// Repair yield: fraction of requested addresses that were repaired.
    pub fn repair_ratio(&self) -> f64 {
        let total = self.repaired.len() + self.unrepaired.len();
        if total == 0 {
            1.0
        } else {
            self.repaired.len() as f64 / total as f64
        }
    }
}

/// Word-level spare storage attached to one e-SRAM.
#[derive(Debug, Clone)]
pub struct BackupMemory {
    config: MemConfig,
    spares: Vec<DataWord>,
    map: BTreeMap<u64, usize>,
    next_free: usize,
}

impl BackupMemory {
    /// Creates a backup memory with `spare_words` spare words for a
    /// memory of the given geometry.
    pub fn new(config: MemConfig, spare_words: usize) -> Self {
        BackupMemory {
            config,
            spares: vec![DataWord::zero(config.width()); spare_words],
            map: BTreeMap::new(),
            next_free: 0,
        }
    }

    /// Total number of spare words.
    pub fn capacity(&self) -> usize {
        self.spares.len()
    }

    /// Number of spare words still unallocated.
    pub fn available(&self) -> usize {
        self.capacity() - self.next_free
    }

    /// Addresses currently remapped to spares, in ascending order.
    pub fn repaired_addresses(&self) -> Vec<Address> {
        self.map.keys().map(|&a| Address::new(a)).collect()
    }

    /// True if `address` is remapped to a spare.
    pub fn is_repaired(&self, address: Address) -> bool {
        self.map.contains_key(&address.index())
    }

    /// Allocates a spare word for `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyRepaired`] if the address already has a
    /// spare, [`MemError::NoSpareAvailable`] if the spares ran out, or
    /// [`MemError::AddressOutOfRange`] for an invalid address.
    pub fn repair(&mut self, address: Address) -> Result<(), MemError> {
        self.config.check_address(address)?;
        if self.map.contains_key(&address.index()) {
            return Err(MemError::AlreadyRepaired {
                address: address.index(),
            });
        }
        if self.next_free >= self.spares.len() {
            return Err(MemError::NoSpareAvailable {
                address: address.index(),
            });
        }
        self.map.insert(address.index(), self.next_free);
        self.next_free += 1;
        Ok(())
    }

    /// Repairs every address in `addresses`, consuming spares until they
    /// run out; duplicate addresses are repaired once.
    pub fn repair_all<I: IntoIterator<Item = Address>>(&mut self, addresses: I) -> RepairOutcome {
        let mut repaired = Vec::new();
        let mut unrepaired = Vec::new();
        for address in addresses {
            match self.repair(address) {
                Ok(()) => repaired.push(address),
                Err(MemError::AlreadyRepaired { .. }) => {}
                Err(_) => unrepaired.push(address),
            }
        }
        RepairOutcome { repaired, unrepaired }
    }

    /// Writes through the repair map: repaired addresses hit the spare
    /// word, others hit the main array.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the underlying memory.
    pub fn write(&mut self, sram: &mut Sram, address: Address, data: &DataWord) -> Result<(), MemError> {
        self.config.check_address(address)?;
        self.config.check_width(data.width())?;
        if let Some(&slot) = self.map.get(&address.index()) {
            self.spares[slot] = data.clone();
            Ok(())
        } else {
            sram.write(address, data)
        }
    }

    /// Reads through the repair map.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the underlying memory.
    pub fn read(&mut self, sram: &mut Sram, address: Address) -> Result<DataWord, MemError> {
        self.config.check_address(address)?;
        if let Some(&slot) = self.map.get(&address.index()) {
            Ok(self.spares[slot].clone())
        } else {
            sram.read(address)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellCoord, CellFault};

    fn setup() -> (Sram, BackupMemory) {
        let config = MemConfig::new(8, 4).unwrap();
        (Sram::new(config), BackupMemory::new(config, 2))
    }

    #[test]
    fn repair_redirects_accesses_to_spare_words() {
        let (mut sram, mut backup) = setup();
        sram.inject_cell_fault(CellCoord::new(Address::new(3), 0), CellFault::StuckAt(false))
            .unwrap();
        backup.repair(Address::new(3)).unwrap();
        backup
            .write(&mut sram, Address::new(3), &DataWord::splat(true, 4))
            .unwrap();
        // Through the repair map, the stuck-at fault is no longer visible.
        assert_eq!(
            backup.read(&mut sram, Address::new(3)).unwrap(),
            DataWord::splat(true, 4)
        );
        // Unrepaired addresses still reach the main array.
        backup
            .write(&mut sram, Address::new(1), &DataWord::splat(true, 4))
            .unwrap();
        assert_eq!(sram.peek(Address::new(1)).unwrap(), DataWord::splat(true, 4));
    }

    #[test]
    fn repair_exhausts_spares_in_order() {
        let (_sram, mut backup) = setup();
        assert_eq!(backup.capacity(), 2);
        backup.repair(Address::new(0)).unwrap();
        backup.repair(Address::new(1)).unwrap();
        assert_eq!(backup.available(), 0);
        assert_eq!(
            backup.repair(Address::new(2)),
            Err(MemError::NoSpareAvailable { address: 2 })
        );
    }

    #[test]
    fn double_repair_is_rejected() {
        let (_sram, mut backup) = setup();
        backup.repair(Address::new(5)).unwrap();
        assert_eq!(
            backup.repair(Address::new(5)),
            Err(MemError::AlreadyRepaired { address: 5 })
        );
        assert!(backup.is_repaired(Address::new(5)));
        assert_eq!(backup.repaired_addresses(), vec![Address::new(5)]);
    }

    #[test]
    fn repair_all_reports_partial_success() {
        let (_sram, mut backup) = setup();
        let outcome = backup.repair_all(vec![
            Address::new(0),
            Address::new(0), // duplicate, silently skipped
            Address::new(1),
            Address::new(2), // no spare left
        ]);
        assert_eq!(outcome.repaired, vec![Address::new(0), Address::new(1)]);
        assert_eq!(outcome.unrepaired, vec![Address::new(2)]);
        assert!(!outcome.is_fully_repaired());
        assert!((outcome.repair_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_repair_outcome_is_fully_repaired() {
        let outcome = RepairOutcome {
            repaired: vec![],
            unrepaired: vec![],
        };
        assert!(outcome.is_fully_repaired());
        assert_eq!(outcome.repair_ratio(), 1.0);
    }

    #[test]
    fn repair_validates_address_range() {
        let (_sram, mut backup) = setup();
        assert!(matches!(
            backup.repair(Address::new(100)),
            Err(MemError::AddressOutOfRange { .. })
        ));
    }
}
