//! Serial-to-Parallel Converter (SPC), Fig. 4 of the paper.

use sram_model::DataWord;
use std::collections::VecDeque;
use std::fmt;

/// Order in which a multi-bit pattern is shifted over the serial line.
///
/// The paper shows (Sec. 3.2) that LSB-first delivery corrupts the
/// backgrounds received by memories narrower than the widest one, while
/// MSB-first delivery is correct for every width; both orders are
/// modelled so the ablation benchmark can demonstrate the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOrder {
    /// Most significant bit first (the paper's proposed order).
    MsbFirst,
    /// Least significant bit first (the naive order).
    LsbFirst,
}

impl fmt::Display for ShiftOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShiftOrder::MsbFirst => write!(f, "msb-first"),
            ShiftOrder::LsbFirst => write!(f, "lsb-first"),
        }
    }
}

/// A serial-to-parallel converter local to one e-SRAM.
///
/// The SPC is a chain of D flip-flops as wide as the memory's IO; the
/// shared Data Background Generator shifts the (widest-memory) pattern
/// over a single serial wire and every SPC retains the last `width` bits
/// it saw. Once delivery completes, [`parallel_out`](Self::parallel_out)
/// is the word applied to the memory's data inputs for the whole March
/// element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialToParallelConverter {
    width: usize,
    register: VecDeque<bool>,
    shifts: u64,
}

impl SerialToParallelConverter {
    /// Creates an SPC for a memory with `width` IO bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "spc width must be non-zero");
        SerialToParallelConverter {
            width,
            register: VecDeque::from(vec![false; width]),
            shifts: 0,
        }
    }

    /// Width of the converter (the memory's IO width).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total shift cycles performed since construction or reset.
    pub fn shift_cycles(&self) -> u64 {
        self.shifts
    }

    /// Shifts one bit into the converter (one clock cycle).
    pub fn shift_in(&mut self, bit: bool) {
        self.register.push_back(bit);
        if self.register.len() > self.width {
            self.register.pop_front();
        }
        self.shifts += 1;
    }

    /// Delivers a full pattern over the serial line in the given order,
    /// one shift cycle per pattern bit, and returns the number of cycles
    /// used (the pattern width).
    pub fn deliver(&mut self, pattern: &DataWord, order: ShiftOrder) -> u64 {
        let bits = match order {
            ShiftOrder::MsbFirst => pattern.bits_msb_first(),
            ShiftOrder::LsbFirst => pattern.bits_lsb_first(),
        };
        for bit in &bits {
            self.shift_in(*bit);
        }
        bits.len() as u64
    }

    /// The word currently presented on the parallel outputs.
    ///
    /// Bit `i` of the result is the bit that was shifted in `i` cycles
    /// before the most recent one, so after an MSB-first delivery the
    /// output equals the low `width` bits of the delivered pattern.
    pub fn parallel_out(&self) -> DataWord {
        let mut word = DataWord::zero(self.width);
        let len = self.register.len();
        for i in 0..self.width {
            word.set(i, self.register[len - 1 - i]);
        }
        word
    }

    /// Clears the register and the cycle counter.
    pub fn reset(&mut self) {
        self.register = VecDeque::from(vec![false; self.width]);
        self.shifts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_first_delivery_reproduces_the_pattern_for_the_widest_memory() {
        // Paper example, Fig. 4(a): c = 4.
        let pattern = DataWord::from_u64(0b1011, 4);
        let mut spc = SerialToParallelConverter::new(4);
        let cycles = spc.deliver(&pattern, ShiftOrder::MsbFirst);
        assert_eq!(cycles, 4);
        assert_eq!(spc.parallel_out(), pattern);
        assert_eq!(spc.shift_cycles(), 4);
    }

    #[test]
    fn msb_first_delivery_gives_narrow_memory_the_low_order_bits() {
        // Paper example, Fig. 4(b): c = 4, c' = 3. The narrower SPC must
        // end up with DP[2:0], not DP[3:1].
        let dp = DataWord::from_u64(0b0111, 4);
        let mut spc = SerialToParallelConverter::new(3);
        spc.deliver(&dp, ShiftOrder::MsbFirst);
        assert_eq!(spc.parallel_out(), dp.truncated_lsb(3));
    }

    #[test]
    fn lsb_first_delivery_corrupts_narrow_memory_backgrounds() {
        // Sec. 3.2: with LSB-first delivery the first (c - c') bits are
        // shifted out of the narrow SPC and it is left with DP[c-1:c-c'].
        let dp = DataWord::from_u64(0b0111, 4); // DP[3:0] = 0111
        let mut spc = SerialToParallelConverter::new(3);
        spc.deliver(&dp, ShiftOrder::LsbFirst);
        let received = spc.parallel_out();
        // Expected correct background would be 111; the naive order
        // delivers DP[3:1] = 011 instead (bit-reversed into positions).
        assert_ne!(received, dp.truncated_lsb(3));
    }

    #[test]
    fn lsb_first_delivery_is_still_correct_for_the_widest_memory() {
        let dp = DataWord::from_u64(0b1001, 4);
        let mut spc = SerialToParallelConverter::new(4);
        spc.deliver(&dp, ShiftOrder::LsbFirst);
        // For the widest memory nothing is lost, but the word arrives
        // bit-reversed relative to MSB-first conversion; the generator
        // compensates only in the MSB-first design, which is why the
        // proposed scheme fixes the order globally.
        assert_eq!(spc.parallel_out().count_ones(), dp.count_ones());
    }

    #[test]
    fn successive_deliveries_overwrite_previous_patterns() {
        let mut spc = SerialToParallelConverter::new(4);
        spc.deliver(&DataWord::from_u64(0b1111, 4), ShiftOrder::MsbFirst);
        spc.deliver(&DataWord::from_u64(0b0010, 4), ShiftOrder::MsbFirst);
        assert_eq!(spc.parallel_out(), DataWord::from_u64(0b0010, 4));
        assert_eq!(spc.shift_cycles(), 8);
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let mut spc = SerialToParallelConverter::new(4);
        spc.deliver(&DataWord::from_u64(0b1111, 4), ShiftOrder::MsbFirst);
        spc.reset();
        assert_eq!(spc.parallel_out(), DataWord::zero(4));
        assert_eq!(spc.shift_cycles(), 0);
    }

    #[test]
    fn a_wide_pattern_delivered_to_every_width_keeps_low_bits_msb_first() {
        // Deliver the 100-bit benchmark background to SPCs of several
        // narrower widths; each must retain the low-order bits.
        let wide = DataWord::checkerboard(100, 0, false);
        for width in [1usize, 3, 8, 33, 64, 100] {
            let mut spc = SerialToParallelConverter::new(width);
            spc.deliver(&wide, ShiftOrder::MsbFirst);
            assert_eq!(spc.parallel_out(), wide.truncated_lsb(width), "width {width}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = SerialToParallelConverter::new(0);
    }

    #[test]
    fn shift_order_display() {
        assert_eq!(ShiftOrder::MsbFirst.to_string(), "msb-first");
        assert_eq!(ShiftOrder::LsbFirst.to_string(), "lsb-first");
    }
}
