//! Serial test-access fabrics for distributed e-SRAM diagnosis.
//!
//! The DATE 2005 paper's architectural contribution is to replace the
//! bi-directional serial interface of [7,8] with a per-memory pair of
//! converters:
//!
//! * [`SerialToParallelConverter`] (SPC, Fig. 4) — receives the test
//!   pattern serially from the shared Data Background Generator and
//!   applies it to the memory in parallel. Delivered and converted
//!   MSB-first so that memories narrower than the widest one still
//!   receive the correct low-order background bits (Sec. 3.2).
//! * [`ParallelToSerialConverter`] (PSC, Fig. 5) — captures the memory's
//!   read response in parallel into scan flip-flops and shifts it back to
//!   the BISD controller serially while the memory idles, so the shift
//!   path never passes through memory cells and no fault can mask
//!   another (Sec. 3.3).
//!
//! The crate also models the two interfaces the paper compares against:
//!
//! * [`BidirectionalSerialInterface`] (Fig. 2, the baseline of [7,8]) —
//!   test data shifts *through* the memory cells, every operation costs
//!   one cycle per bit, and a March element can pinpoint at most one
//!   faulty cell per shift direction, which makes total diagnosis time
//!   proportional to the number of faults.
//! * [`SingleDirectionalSerialInterface`] ([9,10]) — the older scan-style
//!   interface in which a faulty cell corrupts all data shifted through
//!   it, so a fault can *mask* downstream faults entirely.
//!
//! # Example
//!
//! ```
//! use serial::{SerialToParallelConverter, ShiftOrder};
//! use sram_model::DataWord;
//!
//! // Widest memory has 4 IO bits, this one has 3: MSB-first delivery of
//! // the widest pattern still leaves the correct low bits in the SPC.
//! let pattern = DataWord::from_u64(0b0111, 4);
//! let mut spc = SerialToParallelConverter::new(3);
//! spc.deliver(&pattern, ShiftOrder::MsbFirst);
//! assert_eq!(spc.parallel_out(), DataWord::from_u64(0b111, 3));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bidirectional;
pub mod delivery;
pub mod psc;
pub mod single_directional;
pub mod spc;

pub use bidirectional::{BidirectionalSerialInterface, SerialElementOutcome, ShiftDirection};
pub use delivery::PatternDeliveryBus;
pub use psc::ParallelToSerialConverter;
pub use single_directional::SingleDirectionalSerialInterface;
pub use spc::{SerialToParallelConverter, ShiftOrder};
