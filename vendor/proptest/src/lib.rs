//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate supplies the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, `prop_assert*`
//! assertions, [`strategy::Strategy`] with `prop_map`, `any::<T>()`,
//! range strategies and [`collection::vec`].
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the ordinary assertion
//!   message; the RNG is seeded from the test name, so failures are
//!   perfectly reproducible;
//! * strategies are plain value generators (no value trees).

#![deny(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of a given type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy producing `f(value)` for each generated
        /// `value`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy for any value of a type, returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_bits() & 1 == 1
        }
    }

    macro_rules! impl_int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_bits() as $t
                }
            }
        )*};
    }

    impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The number of elements a collection strategy should generate.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange(len..len + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy generating vectors of values from `element`
    /// with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let Range { start, end } = self.size.0;
            let len = if start + 1 >= end {
                start
            } else {
                rng.rng.gen_range(start..end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-execution configuration and RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving value generation.
    ///
    /// Seeded from the test name, so every run of a given test sees the
    /// same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Creates the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Returns 64 fresh random bits.
        pub fn next_bits(&mut self) -> u64 {
            use rand::RngCore;
            self.rng.next_u64()
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes an ordinary `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
