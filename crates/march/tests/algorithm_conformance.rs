//! Structural and coverage conformance of the March algorithm library:
//! element/operation counts must match the paper's notation and the
//! detection claims of Sec. 4.1 must hold over exhaustive fault
//! universes.

use fault_models::{FaultClass, FaultUniverse};
use march::{algorithms, DataBackground, FaultSimulator, MarchRunner};
use sram_model::{MemConfig, Sram};
use testutil::small_geometry_grid;

/// The notation arithmetic: `operation_count` is exactly
/// `complexity_per_address · words` and splits into reads + writes for
/// pause-free tests.
#[test]
fn operation_counts_follow_the_notation_across_the_grid() {
    for config in small_geometry_grid() {
        let words = config.words();
        for test in [
            algorithms::mats_plus(),
            algorithms::march_c_minus(),
            algorithms::diag_rs_march_m1(),
            algorithms::diag_rs_march_base(),
        ] {
            assert_eq!(
                test.operation_count(words),
                test.complexity_per_address() as u64 * words,
                "{} on {config}",
                test.name()
            );
            assert_eq!(
                test.operation_count(words),
                test.read_count(words) + test.write_count(words),
                "{} must be reads + writes",
                test.name()
            );
        }
    }
}

/// March CW runs March C− once plus the intra-word group under
/// `max(1, ⌈log2 c⌉)` binary backgrounds, for any width.
#[test]
fn march_cw_phase_count_tracks_log2_of_the_width() {
    for (width, expected_backgrounds) in [
        (1usize, 1usize),
        (2, 1),
        (3, 2),
        (4, 2),
        (5, 3),
        (8, 3),
        (16, 4),
        (20, 5),
        (100, 7),
    ] {
        let schedule = algorithms::march_cw(width);
        assert_eq!(schedule.phases().len(), 1 + expected_backgrounds, "width {width}");
        // 10n for March C− plus 5n per background phase.
        assert_eq!(
            schedule.complexity_per_address(),
            10 + 5 * expected_backgrounds,
            "width {width}"
        );
    }
}

/// A fault-free memory passes every library algorithm (including the
/// NWRTM and retention-pause variants) under every standard background,
/// with the operation count predicted by the notation.
#[test]
fn fault_free_memories_pass_every_algorithm_on_the_grid() {
    for config in small_geometry_grid() {
        let tests = [
            algorithms::mats_plus(),
            algorithms::march_c_minus(),
            algorithms::with_nwrtm(&algorithms::march_c_minus()),
            algorithms::with_retention_pauses(&algorithms::march_c_minus(), 100),
            algorithms::diag_rs_march_m1(),
            algorithms::diag_rs_march_base(),
        ];
        for test in tests {
            for background in [
                DataBackground::Solid,
                DataBackground::Checkerboard,
                DataBackground::ColumnStripe,
            ] {
                let mut sram = Sram::new(config);
                let outcome = MarchRunner::new()
                    .run_test(&mut sram, &test, background)
                    .expect("run succeeds");
                assert!(
                    outcome.passed(),
                    "{} under {background:?} on {config} must pass fault-free",
                    test.name()
                );
                assert_eq!(outcome.operations, test.operation_count(config.words()));
            }
        }
    }
}

/// Sec. 4.1 core claims: March C− detects and locates the complete
/// stuck-at and transition universes; MATS+ detects all stuck-at faults
/// but misses some transition faults.
#[test]
fn march_c_minus_covers_stuck_at_and_transition_universes_completely() {
    let config = MemConfig::new(16, 4).unwrap();
    let universe = FaultUniverse::new(config);
    let simulator = FaultSimulator::new(config);
    let solid = [DataBackground::Solid];

    let stuck_at = simulator.coverage(&algorithms::march_c_minus(), &universe.stuck_at(), &solid);
    assert_eq!(stuck_at.total(), 16 * 4 * 2);
    assert_eq!(stuck_at.detection_coverage(), 1.0);
    assert_eq!(stuck_at.location_coverage(), 1.0);

    let transition = simulator.coverage(&algorithms::march_c_minus(), &universe.transition(), &solid);
    assert_eq!(transition.detection_coverage(), 1.0);
    assert_eq!(transition.location_coverage(), 1.0);

    let mats_stuck = simulator.coverage(&algorithms::mats_plus(), &universe.stuck_at(), &solid);
    assert_eq!(mats_stuck.detection_coverage(), 1.0);
    let mats_transition = simulator.coverage(&algorithms::mats_plus(), &universe.transition(), &solid);
    assert!(
        mats_transition.detection_coverage() < 1.0,
        "MATS+ must miss some transition faults ({})",
        mats_transition.detection_coverage()
    );
}

/// The NWRTM merge is what buys data-retention coverage: the plain test
/// sees nothing of the DRF universe, the merged test detects and locates
/// all of it, with zero pause time.
#[test]
fn nwrtm_merge_buys_full_drf_coverage_without_pausing() {
    let config = MemConfig::new(16, 4).unwrap();
    let universe = FaultUniverse::new(config).data_retention();
    let simulator = FaultSimulator::new(config);
    let solid = [DataBackground::Solid];

    let plain = simulator.coverage(&algorithms::march_c_minus(), &universe, &solid);
    assert_eq!(
        plain.detection_coverage(),
        0.0,
        "plain March C- must miss every DRF"
    );

    let nwrtm_test = algorithms::with_nwrtm(&algorithms::march_c_minus());
    let nwrtm = simulator.coverage(&nwrtm_test, &universe, &solid);
    assert_eq!(nwrtm.detection_coverage(), 1.0);
    assert_eq!(nwrtm.location_coverage(), 1.0);
    assert!(!nwrtm_test.has_pause(), "NWRTM must not pause");

    // The pause-based alternative reaches the same coverage but carries
    // the 200 ms pause the paper eliminates.
    let paused_test = algorithms::with_retention_pauses(&algorithms::march_c_minus(), 100);
    let paused = simulator.coverage(&paused_test, &universe, &solid);
    assert_eq!(paused.detection_coverage(), 1.0);
    assert_eq!(paused_test.pause_ms(), 200);
}

/// Per-class breakdown: the DRF class entry is what separates the two
/// DRF strategies; the baseline classes agree.
#[test]
fn coverage_report_class_breakdown_is_consistent() {
    let config = MemConfig::new(8, 3).unwrap();
    let universe = FaultUniverse::new(config);
    let simulator = FaultSimulator::new(config);
    let full = universe.date2005_full();
    let report = simulator.coverage(
        &algorithms::with_nwrtm(&algorithms::march_c_minus()),
        &full,
        &[DataBackground::Solid],
    );
    assert_eq!(report.total(), full.len());
    let drf = report
        .class(FaultClass::DataRetention)
        .expect("DRF class present");
    assert_eq!(drf.detection(), 1.0);
    // The summed class totals account for the whole universe.
    let class_total: usize = report.classes().map(|(_, c)| c.total).sum();
    assert_eq!(class_total, full.len());
}
