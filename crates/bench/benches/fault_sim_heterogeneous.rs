//! P4: heterogeneous-universe scheduling — where even chunking loses.
//!
//! Real fault universes are cost-skewed: after golden-run-gated pruning,
//! ~90 % of the faults (single-row classes) sweep one row each while the
//! fallback classes (stuck-open, decoder) still sweep the whole address
//! space — and universes are enumerated class by class, so the expensive
//! faults *cluster* at the tail of the list. Contiguous equal-count
//! chunks then hand one unlucky worker nearly all of the work.
//!
//! This host may have a single core, so the bench measures what actually
//! distinguishes the strategies: the **critical path** — the wall-clock
//! of the most loaded worker under a modeled `MODEL_WORKERS`-worker
//! partition, obtained by *executing* exactly that worker's fault share
//! sequentially. The partitions come from the same pure functions the
//! executor uses ([`even_ranges`], [`cost_ranges`], [`steal_schedule`]),
//! fed by the simulator's own cost model ([`FaultSimulator::fault_cost`]),
//! so the measured entries are the per-strategy parallel wall-clock a
//! `MODEL_WORKERS`-core machine would see:
//!
//! * `critical_path_even_8w` — equal-count chunks (the pre-executor
//!   strategy): the tail chunk holds almost every fallback fault.
//! * `critical_path_cost_8w` — cost-weighted chunk boundaries from
//!   prefix sums of the per-fault cost.
//! * `critical_path_steal_8w` — deterministic block-stealing under the
//!   greedy next-free-worker model.
//! * `whole_universe_sequential` — the total work, for reference (the
//!   ideal critical path is total/8).
//!
//! The cost-weighted and stealing entries must beat the even one; the
//! committed `BENCH_results.json` records the ratio, and the CI perf
//! gate (`perf_gate --prefix fault_sim_heterogeneous/`) keeps every
//! entry within 2x of it.

use bench::print_section;
use criterion::{criterion_group, criterion_main, Criterion};
use esram_exec::{cost_ranges, even_ranges, steal_schedule, DEFAULT_BLOCK_SIZE};
use fault_models::{FaultList, FaultUniverse, MemoryFault};
use march::{algorithms, FaultSimulator, MarchSchedule, ShardPlan};
use sram_model::cell::CellCoord;
use sram_model::{Address, MemConfig};
use std::hint::black_box;
use std::ops::Range;

/// Modeled worker count for the critical-path partitions.
const MODEL_WORKERS: usize = 8;

/// The paper's benchmark geometry.
fn benchmark_config() -> MemConfig {
    testutil::benchmark_geometry()
}

/// The mixed universe: 90 % pruned single-row stuck-at faults spread
/// over the address space, 10 % full-sweep fallback faults (decoder +
/// stuck-open) clustered at the tail, as class-by-class enumeration
/// produces them. 400 faults at 512 x 100.
fn heterogeneous_universe(config: MemConfig) -> FaultList {
    let mut universe = FaultList::new();
    let rows = config.words();
    for index in 0..360u64 {
        let site = CellCoord::new(
            Address::new(index * 7 % rows),
            (index % config.width() as u64) as usize,
        );
        universe.push(if index % 2 == 0 {
            MemoryFault::stuck_at_0(site)
        } else {
            MemoryFault::stuck_at_1(site)
        });
    }
    let enumerated = FaultUniverse::new(config);
    for fault in enumerated.address_decoder().iter().take(20) {
        universe.push(*fault);
    }
    for fault in enumerated.stuck_open().iter().take(20) {
        universe.push(*fault);
    }
    universe
}

/// Extracts the faults of one index set into a standalone universe.
fn sub_universe(universe: &FaultList, ranges: &[Range<usize>]) -> FaultList {
    let faults = universe.as_slice();
    ranges
        .iter()
        .flat_map(|range| faults[range.clone()].iter().copied())
        .collect()
}

/// Modeled cost of an index set.
fn modeled_cost(costs: &[u64], ranges: &[Range<usize>]) -> u128 {
    ranges
        .iter()
        .flat_map(|range| range.clone())
        .map(|index| u128::from(costs[index]))
        .sum()
}

/// The most expensive shard of a contiguous partition, as a range set.
fn bottleneck_contiguous(costs: &[u64], ranges: Vec<Range<usize>>) -> Vec<Range<usize>> {
    ranges
        .into_iter()
        .max_by_key(|range| modeled_cost(costs, std::slice::from_ref(range)))
        .map(|range| vec![range])
        .unwrap_or_default()
}

/// The most loaded worker of the greedy stealing model.
fn bottleneck_steal(costs: &[u64]) -> Vec<Range<usize>> {
    steal_schedule(costs, DEFAULT_BLOCK_SIZE, MODEL_WORKERS)
        .into_iter()
        .max_by_key(|ranges| modeled_cost(costs, ranges))
        .unwrap_or_default()
}

fn detections(sim: &FaultSimulator, schedule: &MarchSchedule, universe: &FaultList) -> usize {
    sim.simulate_universe_with(ShardPlan::sequential(), schedule, universe)
        .iter()
        .filter(|outcome| outcome.detected)
        .count()
}

fn bench_heterogeneous(c: &mut Criterion) {
    let config = benchmark_config();
    let sim = FaultSimulator::new(config);
    let schedule = algorithms::march_cw(config.width());
    let universe = heterogeneous_universe(config);
    let costs: Vec<u64> = universe.iter().map(|fault| sim.fault_cost(true, fault)).collect();

    let even = bottleneck_contiguous(&costs, even_ranges(universe.len(), MODEL_WORKERS));
    let cost = bottleneck_contiguous(&costs, cost_ranges(&costs, MODEL_WORKERS));
    let steal = bottleneck_steal(&costs);
    let (even_cost, cost_cost, steal_cost) = (
        modeled_cost(&costs, &even),
        modeled_cost(&costs, &cost),
        modeled_cost(&costs, &steal),
    );
    let total: u128 = costs.iter().map(|&c| u128::from(c)).sum();
    assert!(
        cost_cost < even_cost && steal_cost < even_cost,
        "cost-weighted ({cost_cost}) and stealing ({steal_cost}) bottlenecks must beat even \
         chunking ({even_cost}) on the clustered universe"
    );

    print_section("P4: heterogeneous-universe scheduling — modeled 8-worker critical paths");
    println!(
        "universe: {} faults ({} single-row + {} full-sweep), total modeled cost {total} row-sweeps \
         (ideal critical path {})",
        universe.len(),
        360,
        universe.len() - 360,
        total / MODEL_WORKERS as u128
    );
    println!(
        "modeled bottleneck cost: even {even_cost}, cost-weighted {cost_cost} ({:.1}x better), \
         stealing {steal_cost} ({:.1}x better)",
        even_cost as f64 / cost_cost as f64,
        even_cost as f64 / steal_cost as f64
    );

    // All strategies must agree on what the universe contains.
    let whole = detections(&sim, &schedule, &universe);
    for (name, ranges) in [("even", &even), ("cost", &cost), ("steal", &steal)] {
        let sub = sub_universe(&universe, ranges);
        let partial = detections(&sim, &schedule, &sub);
        assert!(
            partial <= whole,
            "{name} bottleneck shard detected more faults than the whole universe"
        );
    }

    let mut group = c.benchmark_group("fault_sim_heterogeneous");
    group.sample_size(10);
    let even_universe = sub_universe(&universe, &even);
    group.bench_function("critical_path_even_8w", |b| {
        b.iter(|| black_box(detections(&sim, &schedule, &even_universe)))
    });
    let cost_universe = sub_universe(&universe, &cost);
    group.bench_function("critical_path_cost_8w", |b| {
        b.iter(|| black_box(detections(&sim, &schedule, &cost_universe)))
    });
    let steal_universe = sub_universe(&universe, &steal);
    group.bench_function("critical_path_steal_8w", |b| {
        b.iter(|| black_box(detections(&sim, &schedule, &steal_universe)))
    });
    group.bench_function("whole_universe_sequential", |b| {
        b.iter(|| black_box(detections(&sim, &schedule, &universe)))
    });
    group.finish();
}

criterion_group!(benches, bench_heterogeneous);
criterion_main!(benches);
