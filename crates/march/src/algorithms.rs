//! Library of March algorithms used by the paper and its baseline.
//!
//! * [`march_c_minus`] — the classical 10n March C− [12], the core of
//!   both schemes.
//! * [`march_cw`] — March C− extended with ⌈log2 c⌉ binary data
//!   backgrounds [13], the algorithm the proposed scheme runs.
//! * [`diag_rs_march_m1`] / [`diag_rs_march_base`] — the DiagRSMarch
//!   structure of the baseline [7,8], split into the repeated `M1`
//!   element group (17 operations per address and per bit, iterated `k`
//!   times) and the remaining elements (9 operations per address and per
//!   bit), matching the operation counts of Eq. (1).
//! * [`with_nwrtm`] — merges NWRTM No-Write-Recovery cycles into a March
//!   test so data-retention faults are detected without any pause.
//! * [`with_retention_pauses`] — the classical pause-based DRF extension
//!   used by the baseline comparison.
//!
//! ## Note on the NWRTM merge cost
//!
//! The paper charges the NWRTM merge at 2 extra operations per address
//! (`Nw0`/`Nw1`). A behaviourally verifiable merge also needs the two
//! verifying reads, so [`with_nwrtm`] adds 4 operations per address
//! (2 NWRC writes + 2 reads, reusing the trailing `⇕(r0)` of March C−).
//! The analytic time model (in the `esram-diag` crate) uses the paper's
//! value of 2; the difference is 2·n·t ≈ 10 µs for the benchmark memory,
//! negligible against both the total test time and the 200 ms pause the
//! technique replaces. This substitution is recorded in `DESIGN.md`.

use crate::background::DataBackground;
use crate::ops::{AddressOrder, MarchElement, MarchOp, MarchTest};
use crate::schedule::{MarchSchedule, SchedulePhase};

/// MATS+ (5n): `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)`.
///
/// Included as a light-weight comparison point; it detects stuck-at and
/// address-decoder faults but misses many coupling faults.
pub fn mats_plus() -> MarchTest {
    MarchTest::new(
        "MATS+",
        vec![
            MarchElement::labelled("M0", AddressOrder::Either, vec![MarchOp::Write(false)]),
            MarchElement::labelled(
                "M1",
                AddressOrder::Ascending,
                vec![MarchOp::Read(false), MarchOp::Write(true)],
            ),
            MarchElement::labelled(
                "M2",
                AddressOrder::Descending,
                vec![MarchOp::Read(true), MarchOp::Write(false)],
            ),
        ],
    )
}

/// March C− (10n): `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)` [12].
pub fn march_c_minus() -> MarchTest {
    MarchTest::new(
        "March C-",
        vec![
            MarchElement::labelled("M0", AddressOrder::Either, vec![MarchOp::Write(false)]),
            MarchElement::labelled(
                "M1",
                AddressOrder::Ascending,
                vec![MarchOp::Read(false), MarchOp::Write(true)],
            ),
            MarchElement::labelled(
                "M2",
                AddressOrder::Ascending,
                vec![MarchOp::Read(true), MarchOp::Write(false)],
            ),
            MarchElement::labelled(
                "M3",
                AddressOrder::Descending,
                vec![MarchOp::Read(false), MarchOp::Write(true)],
            ),
            MarchElement::labelled(
                "M4",
                AddressOrder::Descending,
                vec![MarchOp::Read(true), MarchOp::Write(false)],
            ),
            MarchElement::labelled("M5", AddressOrder::Either, vec![MarchOp::Read(false)]),
        ],
    )
}

/// The intra-word element group March CW repeats under each additional
/// data background: `⇕(w0); ⇕(r0,w1); ⇕(r1,w0)` (3 writes + 2 reads per
/// address, matching the `3n + 2n` read/write split of Eq. (2)).
pub fn march_cw_intra_word_elements() -> Vec<MarchElement> {
    vec![
        MarchElement::labelled("Mbg0", AddressOrder::Either, vec![MarchOp::Write(false)]),
        MarchElement::labelled(
            "Mbg1",
            AddressOrder::Either,
            vec![MarchOp::Read(false), MarchOp::Write(true)],
        ),
        MarchElement::labelled(
            "Mbg2",
            AddressOrder::Either,
            vec![MarchOp::Read(true), MarchOp::Write(false)],
        ),
    ]
}

/// March CW for a word width of `width` bits: March C− under the solid
/// background followed by the intra-word element group under each of the
/// ⌈log2 c⌉ binary backgrounds [13].
pub fn march_cw(width: usize) -> MarchSchedule {
    let mut phases = vec![SchedulePhase::new(DataBackground::Solid, march_c_minus())];
    for background in DataBackground::march_cw_set(width) {
        phases.push(SchedulePhase::new(
            background,
            MarchTest::new(
                format!("March CW intra-word ({background})"),
                march_cw_intra_word_elements(),
            ),
        ));
    }
    MarchSchedule::new("March CW", phases)
}

/// The `M1` element group of DiagRSMarch [7,8]: 17 operations per address.
///
/// With the bi-directional serial interface every operation is applied
/// bit-serially, so the group costs `17·n·c` cycles per iteration; the
/// baseline repeats it `k` times because each iteration can locate at
/// most one fault per shift direction.
pub fn diag_rs_march_m1() -> MarchTest {
    MarchTest::new(
        "DiagRSMarch M1",
        vec![
            MarchElement::labelled("M1a", AddressOrder::Either, vec![MarchOp::Write(false)]),
            MarchElement::labelled(
                "M1b",
                AddressOrder::Ascending,
                vec![
                    MarchOp::Read(false),
                    MarchOp::Write(true),
                    MarchOp::Read(true),
                    MarchOp::Write(false),
                ],
            ),
            MarchElement::labelled(
                "M1c",
                AddressOrder::Descending,
                vec![
                    MarchOp::Read(false),
                    MarchOp::Write(true),
                    MarchOp::Read(true),
                    MarchOp::Write(false),
                ],
            ),
            MarchElement::labelled(
                "M1d",
                AddressOrder::Ascending,
                vec![
                    MarchOp::Read(false),
                    MarchOp::Write(true),
                    MarchOp::Read(true),
                    MarchOp::Write(false),
                ],
            ),
            MarchElement::labelled(
                "M1e",
                AddressOrder::Descending,
                vec![
                    MarchOp::Read(false),
                    MarchOp::Write(true),
                    MarchOp::Read(true),
                    MarchOp::Write(false),
                ],
            ),
        ],
    )
}

/// The non-iterated remainder of DiagRSMarch [7,8]: 9 operations per
/// address (left-shift and checkerboard style elements), matching the
/// `9·n·c` term of Eq. (1).
pub fn diag_rs_march_base() -> MarchTest {
    MarchTest::new(
        "DiagRSMarch base",
        vec![
            MarchElement::labelled("M2a", AddressOrder::Either, vec![MarchOp::Write(false)]),
            MarchElement::labelled(
                "M2b",
                AddressOrder::Ascending,
                vec![MarchOp::Read(false), MarchOp::Write(true), MarchOp::Read(true)],
            ),
            MarchElement::labelled(
                "M2c",
                AddressOrder::Descending,
                vec![MarchOp::Read(true), MarchOp::Write(false), MarchOp::Read(false)],
            ),
            MarchElement::labelled(
                "M2d",
                AddressOrder::Either,
                vec![MarchOp::Read(false), MarchOp::Write(false)],
            ),
        ],
    )
}

/// Merges NWRTM No-Write-Recovery cycles into `test` so that
/// data-retention faults on both storage nodes become observable at
/// speed, without any retention pause.
///
/// The trailing `⇕(r0)` element (if present) is replaced by the sequence
/// `⇕(r0,Nw1); ⇕(r1,Nw0); ⇕(r0)`; otherwise the sequence is appended.
/// See the module-level note about the 4-operation cost of this merge
/// versus the paper's 2-operation accounting.
pub fn with_nwrtm(test: &MarchTest) -> MarchTest {
    let name = format!("{} + NWRTM", test.name());
    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    // Drop a trailing pure-read-0 element so it can be fused with the
    // NWRC sequence (March C− and March CW both end with ⇕(r0)).
    let fuse = matches!(elements.last(), Some(last) if last.ops == vec![MarchOp::Read(false)]);
    if fuse {
        elements.pop();
    }
    elements.push(MarchElement::labelled(
        "Nw1",
        AddressOrder::Either,
        vec![MarchOp::Read(false), MarchOp::NwrcWrite(true)],
    ));
    elements.push(MarchElement::labelled(
        "Nw0",
        AddressOrder::Either,
        vec![MarchOp::Read(true), MarchOp::NwrcWrite(false)],
    ));
    elements.push(MarchElement::labelled(
        "Nwv",
        AddressOrder::Either,
        vec![MarchOp::Read(false)],
    ));
    MarchTest::new(name, elements)
}

/// Extends `test` with the classical pause-based data-retention check:
/// `⇕(w0); del; ⇕(r0,w1); del; ⇕(r1)` with a pause of `pause_ms`
/// milliseconds per retention state (the paper uses 100 ms, 200 ms in
/// total), as the baseline architecture of [7,8] would have to do to
/// reach the same DRF coverage.
pub fn with_retention_pauses(test: &MarchTest, pause_ms: u32) -> MarchTest {
    let name = format!("{} + retention pauses", test.name());
    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    elements.push(MarchElement::labelled(
        "DR0w",
        AddressOrder::Either,
        vec![MarchOp::Write(false)],
    ));
    elements.push(MarchElement::labelled(
        "DR0",
        AddressOrder::Either,
        vec![MarchOp::Pause(pause_ms)],
    ));
    elements.push(MarchElement::labelled(
        "DR0r",
        AddressOrder::Either,
        vec![MarchOp::Read(false), MarchOp::Write(true)],
    ));
    elements.push(MarchElement::labelled(
        "DR1",
        AddressOrder::Either,
        vec![MarchOp::Pause(pause_ms)],
    ));
    elements.push(MarchElement::labelled(
        "DR1r",
        AddressOrder::Either,
        vec![MarchOp::Read(true)],
    ));
    MarchTest::new(name, elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mats_plus_is_5n() {
        assert_eq!(mats_plus().complexity_per_address(), 5);
        assert_eq!(mats_plus().element_count(), 3);
    }

    #[test]
    fn march_c_minus_is_10n_with_5_reads_and_5_writes() {
        let test = march_c_minus();
        assert_eq!(test.complexity_per_address(), 10);
        assert_eq!(test.read_count(1), 5);
        assert_eq!(test.write_count(1), 5);
        assert_eq!(test.element_count(), 6);
        assert!(!test.has_nwrc());
        assert!(!test.has_pause());
    }

    #[test]
    fn march_cw_has_one_solid_phase_plus_log2c_background_phases() {
        let schedule = march_cw(100);
        assert_eq!(schedule.phases().len(), 1 + 7);
        assert_eq!(schedule.phases()[0].background, DataBackground::Solid);
        assert_eq!(schedule.phases()[0].test.complexity_per_address(), 10);
        for phase in &schedule.phases()[1..] {
            assert_eq!(phase.test.complexity_per_address(), 5);
            assert_eq!(phase.test.read_count(1), 2);
            assert_eq!(phase.test.write_count(1), 3);
        }
    }

    #[test]
    fn march_cw_narrow_word_still_has_at_least_one_background_phase() {
        assert_eq!(march_cw(1).phases().len(), 2);
        assert_eq!(march_cw(4).phases().len(), 1 + 2);
    }

    #[test]
    fn diag_rs_march_m1_is_17_ops_per_address() {
        assert_eq!(diag_rs_march_m1().complexity_per_address(), 17);
    }

    #[test]
    fn diag_rs_march_base_is_9_ops_per_address() {
        assert_eq!(diag_rs_march_base().complexity_per_address(), 9);
    }

    #[test]
    fn with_nwrtm_adds_two_nwrc_writes_and_two_reads() {
        let base = march_c_minus();
        let nwrtm = with_nwrtm(&base);
        assert!(nwrtm.has_nwrc());
        assert!(!nwrtm.has_pause());
        assert_eq!(nwrtm.complexity_per_address(), base.complexity_per_address() + 4);
        // The two NWRC polarities are both present.
        let ops: Vec<MarchOp> = nwrtm.elements().iter().flat_map(|e| e.ops.clone()).collect();
        assert!(ops.contains(&MarchOp::NwrcWrite(true)));
        assert!(ops.contains(&MarchOp::NwrcWrite(false)));
        assert_eq!(nwrtm.name(), "March C- + NWRTM");
    }

    #[test]
    fn with_nwrtm_appends_when_there_is_no_trailing_read_element() {
        let base = mats_plus();
        let nwrtm = with_nwrtm(&base);
        assert_eq!(nwrtm.complexity_per_address(), base.complexity_per_address() + 5);
        assert_eq!(nwrtm.element_count(), base.element_count() + 3);
    }

    #[test]
    fn with_retention_pauses_adds_200ms_for_the_paper_defaults() {
        let test = with_retention_pauses(&march_c_minus(), 100);
        assert!(test.has_pause());
        assert_eq!(test.pause_ms(), 200);
        assert_eq!(test.complexity_per_address(), 10 + 4);
    }

    #[test]
    fn algorithm_names_are_descriptive() {
        assert_eq!(march_c_minus().name(), "March C-");
        assert_eq!(march_cw(8).name(), "March CW");
        assert!(with_retention_pauses(&march_c_minus(), 100)
            .name()
            .contains("retention"));
    }
}
