//! Closed-form diagnosis-time models (Sec. 4.2, Eq. 1–4).
//!
//! All times are in nanoseconds. `n` is the capacity (words) and `c` the
//! IO width of the largest/widest memory, `t` the diagnosis clock period
//! in nanoseconds, and `k` the number of `M1` iterations the baseline
//! needs (which grows with the defect count).

use march::background::log2_ceil;
use std::fmt;

/// Breakdown of a diagnosis time into clocked cycles and pause time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Clocked diagnosis cycles.
    pub cycles: u64,
    /// Retention-pause time in nanoseconds (zero unless pause-based DRF
    /// testing is included).
    pub pause_ns: f64,
    /// Clock period in nanoseconds.
    pub clock_period_ns: f64,
}

impl TimeBreakdown {
    /// Total time in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.cycles as f64 * self.clock_period_ns + self.pause_ns
    }

    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() / 1.0e6
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles @ {} ns + {} ns pause = {:.3} ms",
            self.cycles,
            self.clock_period_ns,
            self.pause_ns,
            self.total_ms()
        )
    }
}

/// The analytic model of the paper, parameterised on the largest/widest
/// memory and the diagnosis clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticModel {
    /// Capacity (words) of the largest memory, `n`.
    pub words: u64,
    /// IO width of the widest memory, `c`.
    pub width: u64,
    /// Diagnosis clock period `t` in nanoseconds.
    pub clock_period_ns: f64,
}

impl AnalyticModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `width` is zero or the clock period is not
    /// positive.
    pub fn new(words: u64, width: u64, clock_period_ns: f64) -> Self {
        assert!(words > 0 && width > 0, "geometry must be non-zero");
        assert!(
            clock_period_ns.is_finite() && clock_period_ns > 0.0,
            "clock period must be positive"
        );
        AnalyticModel {
            words,
            width,
            clock_period_ns,
        }
    }

    /// The benchmark parameters of the paper's case study (from [16]):
    /// n = 512, c = 100, t = 10 ns.
    pub fn date2005_benchmark() -> Self {
        AnalyticModel::new(512, 100, 10.0)
    }

    /// Eq. (1): baseline (DiagRSMarch over the bi-directional serial
    /// interface) cycle count without DRF diagnosis, `(17k + 9)·n·c`.
    pub fn baseline_cycles(&self, k: u64) -> u64 {
        (17 * k + 9) * self.words * self.width
    }

    /// Eq. (1) as a time breakdown.
    pub fn baseline_time(&self, k: u64) -> TimeBreakdown {
        TimeBreakdown {
            cycles: self.baseline_cycles(k),
            pause_ns: 0.0,
            clock_period_ns: self.clock_period_ns,
        }
    }

    /// Eq. (2): proposed scheme (March CW through SPC/PSC) cycle count
    /// without DRF diagnosis,
    /// `(5n + 5c + 5n(c+1)) + (3n + 3c + 2n(c+1))·⌈log2 c⌉`.
    pub fn proposed_cycles(&self) -> u64 {
        let n = self.words;
        let c = self.width;
        let log_c = u64::from(log2_ceil(c as usize).max(1));
        (5 * n + 5 * c + 5 * n * (c + 1)) + (3 * n + 3 * c + 2 * n * (c + 1)) * log_c
    }

    /// Eq. (2) as a time breakdown.
    pub fn proposed_time(&self) -> TimeBreakdown {
        TimeBreakdown {
            cycles: self.proposed_cycles(),
            pause_ns: 0.0,
            clock_period_ns: self.clock_period_ns,
        }
    }

    /// Eq. (3): diagnosis-time reduction factor without DRF diagnosis,
    /// `R = T[7,8] / T_proposed`.
    pub fn reduction_without_drf(&self, k: u64) -> f64 {
        self.baseline_cycles(k) as f64 / self.proposed_cycles() as f64
    }

    /// Baseline cycle count when the classical pause-based DRF extension
    /// is added: `8·k` extra units of serialised complexity.
    pub fn baseline_cycles_with_drf(&self, k: u64) -> u64 {
        self.baseline_cycles(k) + 8 * k * self.words * self.width
    }

    /// Baseline time including DRF diagnosis: the extra `8k` units plus
    /// the retention delay (the paper assumes 200 ms in total).
    pub fn baseline_time_with_drf(&self, k: u64, retention_delay_ms: f64) -> TimeBreakdown {
        TimeBreakdown {
            cycles: self.baseline_cycles_with_drf(k),
            pause_ns: retention_delay_ms * 1.0e6,
            clock_period_ns: self.clock_period_ns,
        }
    }

    /// Proposed cycle count including NWRTM DRF diagnosis: the paper
    /// charges 2 extra units (`Nw0`/`Nw1`) plus their pattern deliveries.
    pub fn proposed_cycles_with_drf(&self) -> u64 {
        self.proposed_cycles() + 2 * self.words + 2 * self.width
    }

    /// Proposed time including NWRTM DRF diagnosis (no pause at all).
    pub fn proposed_time_with_drf(&self) -> TimeBreakdown {
        TimeBreakdown {
            cycles: self.proposed_cycles_with_drf(),
            pause_ns: 0.0,
            clock_period_ns: self.clock_period_ns,
        }
    }

    /// Eq. (4): diagnosis-time reduction factor when DRF diagnosis is
    /// included on both sides.
    pub fn reduction_with_drf(&self, k: u64, retention_delay_ms: f64) -> f64 {
        self.baseline_time_with_drf(k, retention_delay_ms).total_ns()
            / self.proposed_time_with_drf().total_ns()
    }

    /// The paper's estimate of the minimum iteration count `k` for a
    /// defect population: the `M1` group covers 75 % of the faults and
    /// each iteration identifies at most two of them, so
    /// `k = ⌈faults · 0.75 / 2⌉`.
    pub fn iterations_for_faults(fault_count: u64) -> u64 {
        ((fault_count as f64 * 0.75) / 2.0).ceil() as u64
    }

    /// The paper's estimate of the maximum number of faults for a defect
    /// rate: defective cells spread over `n·c` cells, with the four
    /// defect classes of [8] assumed to pair into at most
    /// `n·c·rate / 2` distinguishable faulty cells (the case study turns
    /// 1 % of 51 200 cells into 256 faults).
    pub fn max_faults_for_defect_rate(&self, defect_rate: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&defect_rate),
            "defect rate must be within 0..=1"
        );
        ((self.words * self.width) as f64 * defect_rate / 2.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benchmark() -> AnalyticModel {
        AnalyticModel::date2005_benchmark()
    }

    #[test]
    fn benchmark_parameters_match_the_case_study() {
        let m = benchmark();
        assert_eq!(m.words, 512);
        assert_eq!(m.width, 100);
        assert_eq!(m.clock_period_ns, 10.0);
    }

    #[test]
    fn eq1_baseline_cycles() {
        // (17*96 + 9) * 512 * 100 = 84 019 200 cycles.
        assert_eq!(benchmark().baseline_cycles(96), 84_019_200);
        assert!((benchmark().baseline_time(96).total_ms() - 840.192).abs() < 1e-9);
    }

    #[test]
    fn eq2_proposed_cycles() {
        // (5n+5c+5n(c+1)) + (3n+3c+2n(c+1))*7 = 261 620 + 736 820 = 998 440.
        assert_eq!(benchmark().proposed_cycles(), 998_440);
        assert!((benchmark().proposed_time().total_ms() - 9.9844).abs() < 1e-9);
    }

    #[test]
    fn eq3_reduction_without_drf_is_at_least_84_for_the_case_study() {
        let r = benchmark().reduction_without_drf(96);
        assert!(r >= 84.0, "R = {r}");
        assert!(r < 86.0, "R = {r} should be close to the paper's 84");
    }

    #[test]
    fn eq4_reduction_with_drf_is_far_larger() {
        let r = benchmark().reduction_with_drf(96, 200.0);
        assert!(r > 140.0, "R = {r}");
        assert!(
            r < 150.0,
            "R = {r} should be in the paper's ballpark (>= 145 claimed)"
        );
        // And it must beat the DRF-free reduction by a wide margin.
        assert!(r > benchmark().reduction_without_drf(96));
    }

    #[test]
    fn iteration_estimate_matches_the_case_study() {
        // 1 % of 51 200 cells -> 256 faults -> k = 256 * 0.75 / 2 = 96.
        let faults = benchmark().max_faults_for_defect_rate(0.01);
        assert_eq!(faults, 256);
        assert_eq!(AnalyticModel::iterations_for_faults(faults), 96);
        assert_eq!(AnalyticModel::iterations_for_faults(0), 0);
        assert_eq!(AnalyticModel::iterations_for_faults(3), 2);
    }

    #[test]
    fn reduction_grows_with_defect_rate() {
        let m = benchmark();
        let low_k = AnalyticModel::iterations_for_faults(m.max_faults_for_defect_rate(0.001));
        let high_k = AnalyticModel::iterations_for_faults(m.max_faults_for_defect_rate(0.05));
        assert!(m.reduction_without_drf(high_k) > m.reduction_without_drf(low_k));
    }

    #[test]
    fn proposed_drf_overhead_is_negligible() {
        let m = benchmark();
        let extra = m.proposed_cycles_with_drf() - m.proposed_cycles();
        assert_eq!(extra, 2 * 512 + 2 * 100);
        let ratio = extra as f64 / m.proposed_cycles() as f64;
        assert!(ratio < 0.002, "NWRTM cost must be well below 1 % ({ratio})");
    }

    #[test]
    fn baseline_drf_overhead_is_dominated_by_the_200ms_pause() {
        let m = benchmark();
        let with = m.baseline_time_with_drf(96, 200.0).total_ns();
        let without = m.baseline_time(96).total_ns();
        assert!(with - without > 2.0e8);
    }

    #[test]
    fn breakdown_display_is_informative() {
        let text = benchmark().proposed_time().to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("ms"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        let _ = AnalyticModel::new(0, 8, 10.0);
    }
}
