//! Behavioural embedded-SRAM model for memory BIST/BISD simulation.
//!
//! This crate provides the memory substrate used by the reproduction of
//! *"A Fast Diagnosis Scheme for Distributed Small Embedded SRAMs"*
//! (Wang, Wu, Ivanov — DATE 2005). It models a small embedded SRAM
//! (e-SRAM) at the level of observable port behaviour:
//!
//! * a word-organised cell array stored as packed bit planes
//!   ([`planes::BitPlanes`]: `u64` limbs, one run per word) with a
//!   sparse overlay of behavioural cells for the faulty sites, so
//!   fault-free word accesses are limb copies — with per-cell defect
//!   semantics ([`cell::CellFault`]) covering stuck-at, transition,
//!   coupling, bridging and **data-retention** (open pull-up PMOS)
//!   faults;
//! * the pre-refactor dense per-cell model
//!   ([`reference::ReferenceSram`]) kept as a differential-testing
//!   oracle and benchmarking baseline, behind the same
//!   [`port::MemoryPort`]/[`port::FaultTarget`] abstractions;
//! * a lane-parallel transposition of that design
//!   ([`lanes::LanePlanes`]): up to 64 independently-faulty copies of
//!   one memory packed into the bit lanes of a `u64`, driven by
//!   broadcast row operations — the substrate of the march fault
//!   simulator's lane kernel;
//! * an address decoder with the classical address-decoder fault classes;
//! * port operations (read, write, no-op and the *No Write Recovery
//!   Cycle* of the NWRTM DFT technique) with an operation trace and
//!   cycle accounting;
//! * retention-time elapse so that data-retention faults only become
//!   observable after a configurable pause (or immediately under NWRTM);
//! * a backup (spare-word) memory used for repair after diagnosis.
//!
//! The model is deliberately *behavioural*: it reproduces exactly the
//! responses a diagnosis architecture can observe through the memory
//! ports, which is all the DATE 2005 evaluation depends on.
//!
//! # Example
//!
//! ```
//! use sram_model::{MemConfig, Sram, DataWord, Address};
//!
//! # fn main() -> Result<(), sram_model::MemError> {
//! let config = MemConfig::new(512, 100)?; // 512 words, 100 IO bits
//! let mut sram = Sram::new(config);
//! let pattern = DataWord::splat(true, 100);
//! sram.write(Address::new(7), &pattern)?;
//! assert_eq!(sram.read(Address::new(7))?, pattern);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod array;
pub mod backup;
pub mod cell;
pub mod config;
pub mod decoder;
pub mod error;
pub mod lanes;
pub mod planes;
pub mod port;
pub mod reference;
pub mod retention;
pub mod trace;
pub mod word;

pub use array::Sram;
pub use backup::{BackupMemory, RepairOutcome};
pub use cell::{Cell, CellFault, CellNode, CouplingKind};
pub use config::{Address, MemConfig, MemoryId};
pub use decoder::{DecoderFault, DecoderFaultKind};
pub use error::MemError;
pub use lanes::LanePlanes;
pub use planes::BitPlanes;
pub use port::{AccessProfile, FaultTarget, MemoryPort};
pub use reference::ReferenceSram;
pub use retention::RetentionModel;
pub use trace::{MemOp, OpKind, OperationTrace};
pub use word::{DataWord, FailingBits};
