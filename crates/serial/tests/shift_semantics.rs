//! Shift-order and masking semantics of the serial fabrics: MSB-first
//! delivery must preserve low-order bits for every narrower memory
//! (Sec. 3.2), the PSC must serialise responses losslessly outside the
//! cell array (Sec. 3.3), and the two baseline interfaces must exhibit
//! exactly the limitations the paper attributes to them.

use fault_models::MemoryFault;
use march::{algorithms, AddressOrder, DataBackground, MarchElement, MarchOp};
use serial::{
    BidirectionalSerialInterface, ParallelToSerialConverter, PatternDeliveryBus, SerialToParallelConverter,
    ShiftDirection, ShiftOrder, SingleDirectionalSerialInterface,
};
use sram_model::cell::CellCoord;
use sram_model::{Address, DataWord, MemConfig, Sram};
use std::collections::BTreeSet;

/// Every (wide, narrow) width pair: MSB-first delivery leaves the narrow
/// SPC holding exactly the low-order bits of the wide pattern.
#[test]
fn msb_first_delivery_preserves_low_order_bits_for_every_width_pair() {
    let widths = [1usize, 3, 4, 5, 8, 16, 20, 100];
    for &wide in &widths {
        // A pattern with ones in the low half and zeros above, so any
        // shift misalignment is visible.
        let mut pattern = DataWord::zero(wide);
        for bit in 0..wide.div_ceil(2) {
            pattern.set(bit, true);
        }
        for &narrow in widths.iter().filter(|&&w| w <= wide) {
            let mut spc = SerialToParallelConverter::new(narrow);
            let cycles = spc.deliver(&pattern, ShiftOrder::MsbFirst);
            assert_eq!(cycles, wide as u64, "delivery costs one cycle per pattern bit");
            assert_eq!(
                spc.parallel_out(),
                pattern.truncated_lsb(narrow),
                "wide {wide} -> narrow {narrow}"
            );
        }
    }
}

/// The ablation direction: LSB-first delivery corrupts every strictly
/// narrower memory whenever the dropped high bits differ from the kept
/// low bits.
#[test]
fn lsb_first_delivery_corrupts_every_strictly_narrower_memory() {
    for (wide, narrow) in [(4usize, 3usize), (8, 4), (16, 5), (20, 8), (100, 33)] {
        // Low `narrow` bits all ones, everything above zero: the naive
        // order shifts the ones out of the narrow register.
        let mut pattern = DataWord::zero(wide);
        for bit in 0..narrow {
            pattern.set(bit, true);
        }
        let mut spc = SerialToParallelConverter::new(narrow);
        spc.deliver(&pattern, ShiftOrder::LsbFirst);
        assert_ne!(
            spc.parallel_out(),
            pattern.truncated_lsb(narrow),
            "LSB-first must corrupt {wide} -> {narrow}"
        );
    }
}

/// One broadcast serves a whole heterogeneous population in `c_max`
/// cycles, and every memory ends up with its own correct background.
#[test]
fn one_broadcast_serves_a_heterogeneous_population() {
    let widths = [20usize, 8, 5, 1];
    let mut bus = PatternDeliveryBus::new(&widths);
    let pattern = DataWord::checkerboard(20, 0, false);
    let cycles = bus.broadcast(&pattern);
    assert_eq!(cycles, 20, "broadcast costs c_max cycles");
    for (index, &width) in widths.iter().enumerate() {
        assert_eq!(
            bus.pattern_at(index),
            pattern.truncated_lsb(width),
            "memory {index}"
        );
    }
}

/// PSC round trip: capture + shift costs `width + 1` cycles and loses
/// nothing, for any width and pattern shape.
#[test]
fn psc_serialisation_round_trips_for_every_width() {
    for width in [1usize, 3, 4, 8, 16, 33, 100] {
        for pattern in [
            DataWord::zero(width),
            DataWord::splat(true, width),
            DataWord::checkerboard(width, 0, false),
            DataWord::column_stripe(width, true),
        ] {
            let mut psc = ParallelToSerialConverter::new(width);
            let (bits, cycles) = psc.serialize(&pattern);
            assert_eq!(cycles, width as u64 + 1, "capture + width shifts");
            assert_eq!(bits.len(), width);
            assert_eq!(ParallelToSerialConverter::word_from_serial(&bits), pattern);
        }
    }
}

/// The bi-directional interface pays one cycle per bit for every
/// operation and locates at most one *new* fault per element — the two
/// properties behind Eq. (1)'s `k` iterations.
#[test]
fn bidirectional_interface_is_bit_serial_and_locates_one_new_fault_per_element() {
    let config = MemConfig::new(16, 4).unwrap();
    let mut sram = Sram::new(config);
    let sites = [
        CellCoord::new(Address::new(2), 1),
        CellCoord::new(Address::new(9), 3),
    ];
    for site in sites {
        MemoryFault::stuck_at_1(site).inject_into(&mut sram).unwrap();
    }
    // Prepare all-zero contents, then a read-0 sweep observes both
    // stuck-at-1 cells.
    let interface = BidirectionalSerialInterface::new(4);
    let write_element = MarchElement::new(AddressOrder::Ascending, vec![MarchOp::Write(false)]);
    let read_element = MarchElement::new(AddressOrder::Ascending, vec![MarchOp::Read(false)]);

    let mut known = BTreeSet::new();
    let prep = interface
        .run_element(
            &mut sram,
            &write_element,
            DataBackground::Solid,
            ShiftDirection::Right,
            &known,
        )
        .unwrap();
    assert_eq!(prep.cycles, 16 * 4, "one cycle per bit per write");

    let first = interface
        .run_element(
            &mut sram,
            &read_element,
            DataBackground::Solid,
            ShiftDirection::Right,
            &known,
        )
        .unwrap();
    assert_eq!(first.cycles, 16 * 4, "one cycle per bit per read");
    assert_eq!(
        first.located,
        Some((sites[0].address, sites[0].bit)),
        "first new fault only"
    );
    assert_eq!(first.mismatches, 2, "both faulty cells respond");

    // With the first site known, a repeat element locates the second.
    known.insert((sites[0].address, sites[0].bit));
    let second = interface
        .run_element(
            &mut sram,
            &read_element,
            DataBackground::Solid,
            ShiftDirection::Right,
            &known,
        )
        .unwrap();
    assert_eq!(second.located, Some((sites[1].address, sites[1].bit)));
}

/// Left shifts scan the word from the opposite end, so the two
/// directions disagree on which of two same-word faults is "first" —
/// which is why DiagRSMarch alternates directions.
#[test]
fn shift_direction_selects_which_fault_in_a_word_is_located_first() {
    let config = MemConfig::new(8, 4).unwrap();
    let site_low = CellCoord::new(Address::new(3), 0);
    let site_high = CellCoord::new(Address::new(3), 3);

    let build = || {
        let mut sram = Sram::new(config);
        MemoryFault::stuck_at_1(site_low).inject_into(&mut sram).unwrap();
        MemoryFault::stuck_at_1(site_high).inject_into(&mut sram).unwrap();
        for address in config.addresses() {
            sram.force_word(address, &DataWord::zero(4)).unwrap();
        }
        sram
    };
    let interface = BidirectionalSerialInterface::new(4);
    let read_element = MarchElement::new(AddressOrder::Ascending, vec![MarchOp::Read(false)]);
    let known = BTreeSet::new();

    let right = interface
        .run_element(
            &mut build(),
            &read_element,
            DataBackground::Solid,
            ShiftDirection::Right,
            &known,
        )
        .unwrap();
    assert_eq!(right.located, Some((site_low.address, site_low.bit)));

    let left = interface
        .run_element(
            &mut build(),
            &read_element,
            DataBackground::Solid,
            ShiftDirection::Left,
            &known,
        )
        .unwrap();
    assert_eq!(left.located, Some((site_high.address, site_high.bit)));
}

/// The single-directional interface masks every fault downstream of the
/// first faulty chain position — the failure mode that motivated the
/// bi-directional baseline in the first place.
#[test]
fn single_directional_interface_masks_downstream_faults() {
    let config = MemConfig::new(16, 4).unwrap();
    let mut sram = Sram::new(config);
    let upstream = CellCoord::new(Address::new(1), 2);
    let downstream = CellCoord::new(Address::new(10), 0);
    MemoryFault::stuck_at_1(upstream).inject_into(&mut sram).unwrap();
    MemoryFault::stuck_at_1(downstream)
        .inject_into(&mut sram)
        .unwrap();

    let interface = SingleDirectionalSerialInterface::new(4);
    let outcome = interface
        .run_march(&mut sram, &algorithms::march_c_minus(), DataBackground::Solid)
        .unwrap();
    assert!(outcome.has_masking(), "a downstream fault must be masked");
    assert!(outcome.identified.contains(&(upstream.address, upstream.bit)));
    assert!(outcome.masked.contains(&(downstream.address, downstream.bit)));
    assert!((outcome.identification_ratio() - 0.5).abs() < 1e-12);

    // A fault-free memory reports nothing masked and a perfect ratio.
    let mut clean = Sram::new(config);
    let clean_outcome = interface
        .run_march(&mut clean, &algorithms::march_c_minus(), DataBackground::Solid)
        .unwrap();
    assert!(!clean_outcome.has_masking());
    assert_eq!(clean_outcome.identification_ratio(), 1.0);
}
