//! Sharded SoC construction must be *bit-identical* to sequential
//! construction: memory `i` draws its defects from RNG stream `i` of
//! the builder seed, so the built population is a pure function of
//! `(seed, index, geometry)` no matter how many workers build it.
//!
//! The CI thread-matrix job runs this suite under `ESRAM_DIAG_THREADS`
//! ∈ {1, 2, 7, 32} so the default-plan path is exercised at every
//! worker count too.

use esram_diag::{DiagnosisScheme, FastScheme, ShardPlan, ShardStrategy, Soc};
use proptest::prelude::*;

/// Compares two populations member by member: identity, geometry,
/// injected ground truth (bit-identical fault lists), the behavioural
/// memory state (cell faults installed by injection) and spare capacity.
fn assert_bit_identical(a: &Soc, b: &Soc, context: &str) {
    assert_eq!(a.memories().len(), b.memories().len(), "{context}: member count");
    for (left, right) in a.memories().iter().zip(b.memories().iter()) {
        assert_eq!(left.id, right.id, "{context}: memory id");
        assert_eq!(
            left.config(),
            right.config(),
            "{context}: geometry of {}",
            left.id
        );
        assert_eq!(
            left.injected, right.injected,
            "{context}: injected ground truth of {}",
            left.id
        );
        assert_eq!(
            left.sram.cell_faults(),
            right.sram.cell_faults(),
            "{context}: installed cell faults of {}",
            left.id
        );
        assert_eq!(
            left.backup.capacity(),
            right.backup.capacity(),
            "{context}: spare capacity of {}",
            left.id
        );
    }
}

fn build(memories: usize, words: u64, width: usize, rate: f64, seed: u64, drf: bool, plan: ShardPlan) -> Soc {
    let mut builder = Soc::builder()
        .memories(memories, words, width)
        .expect("valid geometry")
        .defect_rate(rate)
        .seed(seed);
    if drf {
        builder = builder.with_data_retention_defects();
    }
    builder.build_with(plan).expect("population builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for any population shape, defect rate and seed, every
    /// worker count builds the same SoC the sequential path builds.
    #[test]
    fn sharded_construction_is_bit_identical_to_sequential(
        memories in 1usize..24,
        words_exp in 3u32..7,
        width in 3usize..17,
        rate_millis in 0u32..200,
        seed in any::<u64>(),
        drf in any::<bool>(),
    ) {
        let words = 1u64 << words_exp;
        let rate = f64::from(rate_millis) / 1000.0;
        let sequential = build(memories, words, width, rate, seed, drf, ShardPlan::sequential());
        // Rotate strategies across the thread counts so every case
        // still costs three sharded builds while the cases jointly
        // cover the full strategy x worker-count grid.
        let combos = [
            (ShardStrategy::Even, 2usize),
            (ShardStrategy::Cost, 7),
            (ShardStrategy::Steal, 32),
            (ShardStrategy::Steal, 2),
            (ShardStrategy::Even, 7),
            (ShardStrategy::Cost, 32),
            (ShardStrategy::Cost, 2),
            (ShardStrategy::Steal, 7),
            (ShardStrategy::Even, 32),
        ];
        let rotation = (seed % 3) as usize * 3;
        for &(strategy, threads) in combos[rotation..rotation + 3].iter() {
            let plan = ShardPlan::with_threads(threads)
                .with_strategy(strategy)
                .with_block_size(1 + (seed % 7) as usize);
            let sharded = build(memories, words, width, rate, seed, drf, plan);
            assert_bit_identical(&sequential, &sharded, &plan.to_string());
        }
    }
}

#[test]
fn default_plan_build_equals_sequential_build() {
    // The plain `build()` runs under `ShardPlan::from_env()`; whatever
    // the CI matrix sets, it must equal the sequential oracle.
    let make_default = || {
        Soc::builder()
            .memories(37, 64, 16)
            .expect("valid geometry")
            .memory(32, 8)
            .expect("valid geometry")
            .defect_rate(0.02)
            .with_data_retention_defects()
            .seed(99)
            .build()
            .expect("population builds")
    };
    let sequential = Soc::builder()
        .memories(37, 64, 16)
        .expect("valid geometry")
        .memory(32, 8)
        .expect("valid geometry")
        .defect_rate(0.02)
        .with_data_retention_defects()
        .seed(99)
        .build_with(ShardPlan::sequential())
        .expect("population builds");
    assert_bit_identical(
        &make_default(),
        &sequential,
        &format!("default plan ({})", ShardPlan::from_env()),
    );
}

#[test]
fn sharded_and_sequential_builds_diagnose_identically() {
    // End-to-end corroboration: identical construction implies
    // identical diagnosis, including the comparator log order.
    let mut sequential = build(12, 32, 8, 0.05, 7, true, ShardPlan::sequential());
    let mut sharded = build(12, 32, 8, 0.05, 7, true, ShardPlan::with_threads(7));
    let scheme = FastScheme::new(10.0);
    let a = scheme
        .diagnose(sequential.memories_mut())
        .expect("diagnosis runs");
    let b = scheme.diagnose(sharded.memories_mut()).expect("diagnosis runs");
    assert_eq!(a, b);
    assert!(!a.is_clean(), "the population must contain faults");
}

#[test]
fn benchmark_population_builds_identically_at_every_worker_count() {
    // The paper's 512 × 100 benchmark geometry at population scale —
    // the exact shape the parallel builder exists for (kept to a
    // 64-memory slice so the debug-mode suite stays fast; the bench
    // exercises the full 512).
    let sequential = Soc::builder()
        .memories(64, 512, 100)
        .expect("valid geometry")
        .defect_rate(0.01)
        .seed(2005)
        .build_with(ShardPlan::sequential())
        .expect("population builds");
    assert!(sequential.injected_faults() > 0);
    for strategy in ShardStrategy::all() {
        for threads in [2usize, 32] {
            let plan = ShardPlan::with_threads(threads).with_strategy(strategy);
            let sharded = Soc::builder()
                .memories(64, 512, 100)
                .expect("valid geometry")
                .defect_rate(0.01)
                .seed(2005)
                .build_with(plan)
                .expect("population builds");
            assert_bit_identical(&sequential, &sharded, &format!("benchmark, {plan}"));
        }
    }
}
