//! Packed bit-plane storage for the fault-free bulk of a memory array.
//!
//! The behavioural [`Sram`](crate::array::Sram) used to model every bit
//! cell as its own [`Cell`](crate::cell::Cell) object, which made every
//! word access `O(width)` matches over fault enums and put benchmark
//! geometries (512 × 100) out of reach for batched fault simulation.
//! [`BitPlanes`] instead packs the stored values of all cells into
//! 64-bit limbs, row-major: word reads and writes become limb copies
//! plus a top-limb mask, and only the (few) faulty cells are routed
//! through the behavioural cell state machine via a sparse overlay kept
//! by the array.

use crate::config::MemConfig;
use crate::word::{top_limb_mask, DataWord};

/// Packed storage for the stored values of every cell of a memory.
///
/// Layout: row-major, `limbs_per_word` consecutive limbs per word, bit
/// `b` of word `w` at limb `w * limbs_per_word + b / 64`, bit `b % 64`.
/// Bits of a word's top limb beyond the IO width are always zero, so
/// whole-word operations can compare and copy limbs directly.
///
/// The planes also keep a *dirty-row* bitset: every mutating access
/// marks its row, and [`BitPlanes::clear`] zeroes only the marked rows.
/// A reset after a sparse programme (e.g. a single-row pruned fault
/// simulation, or one shard worker resetting between faults) therefore
/// costs O(rows touched), not O(all limbs). Invariant: any row holding
/// a non-zero limb is marked dirty (marking is a superset of non-zero).
#[derive(Debug, Clone, Eq)]
pub struct BitPlanes {
    width: usize,
    limbs_per_word: usize,
    top_mask: u64,
    limbs: Vec<u64>,
    /// Bitset over rows mutated since the last [`BitPlanes::clear`].
    dirty: Vec<u64>,
}

impl PartialEq for BitPlanes {
    /// Equality is over geometry and stored contents only; the dirty-row
    /// bookkeeping is an implementation detail (two planes holding the
    /// same words compare equal even if they were written differently).
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.limbs_per_word == other.limbs_per_word && self.limbs == other.limbs
    }
}

impl BitPlanes {
    /// Creates all-zero packed storage for the given geometry.
    pub fn new(config: MemConfig) -> Self {
        let width = config.width();
        let limbs_per_word = width.div_ceil(64);
        BitPlanes {
            width,
            limbs_per_word,
            top_mask: top_limb_mask(width),
            limbs: vec![0u64; limbs_per_word * config.words() as usize],
            dirty: vec![0u64; (config.words() as usize).div_ceil(64)],
        }
    }

    /// Marks `row` as mutated since the last clear.
    #[inline]
    fn mark_dirty(&mut self, row: u64) {
        self.dirty[(row / 64) as usize] |= 1u64 << (row % 64);
    }

    /// Number of rows mutated since the last clear (diagnostics/tests).
    pub fn dirty_row_count(&self) -> usize {
        self.dirty.iter().map(|limb| limb.count_ones() as usize).sum()
    }

    /// IO width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of limbs backing one word.
    pub fn limbs_per_word(&self) -> usize {
        self.limbs_per_word
    }

    #[inline]
    fn base(&self, row: u64) -> usize {
        row as usize * self.limbs_per_word
    }

    /// The stored word at `row` as a fresh [`DataWord`] (a limb copy;
    /// heap-allocation-free for widths up to 128 bits).
    #[inline]
    pub fn word(&self, row: u64) -> DataWord {
        let base = self.base(row);
        match self.limbs_per_word {
            // Fixed-size copies: the plane limbs are kept canonical
            // (top-limb masked), so the inline constructor applies.
            1 => DataWord::from_inline_limbs(self.width, [self.limbs[base], 0]),
            2 => DataWord::from_inline_limbs(self.width, [self.limbs[base], self.limbs[base + 1]]),
            _ => {
                let mut out = DataWord::zero(self.width);
                out.copy_limbs_from(&self.limbs[base..base + self.limbs_per_word]);
                out
            }
        }
    }

    /// Copies the stored word at `row` into `out` without constructing
    /// a fresh [`DataWord`] (the sense-amp state update on the packed
    /// read fast path).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the widths differ.
    #[inline]
    pub fn copy_row_into(&self, row: u64, out: &mut DataWord) {
        debug_assert_eq!(out.width(), self.width, "plane copy width mismatch");
        let base = self.base(row);
        match self.limbs_per_word {
            1 => out.set_inline_limbs([self.limbs[base], 0]),
            2 => out.set_inline_limbs([self.limbs[base], self.limbs[base + 1]]),
            _ => out.copy_limbs_from(&self.limbs[base..base + self.limbs_per_word]),
        }
    }

    /// True if the stored word at `row` equals `word` (a limb compare —
    /// no `DataWord` is constructed).
    #[inline]
    pub fn word_equals(&self, row: u64, word: &DataWord) -> bool {
        let base = self.base(row);
        let limbs = word.limbs();
        match self.limbs_per_word {
            1 => self.limbs[base] == limbs[0],
            2 => self.limbs[base] == limbs[0] && self.limbs[base + 1] == limbs[1],
            _ => self.limbs[base..base + self.limbs_per_word] == *limbs,
        }
    }

    /// Compares the stored word at `row` against `expected` while also
    /// copying it into `out`, in a single pass over the limbs (the
    /// fused read-check-and-sense-latch of the packed read fast path).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the widths differ.
    #[inline]
    pub fn compare_and_copy_row(&self, row: u64, expected: &DataWord, out: &mut DataWord) -> bool {
        debug_assert_eq!(expected.width(), self.width);
        debug_assert_eq!(out.width(), self.width);
        let base = self.base(row);
        let exp = expected.limbs();
        match self.limbs_per_word {
            1 => {
                let l0 = self.limbs[base];
                out.set_inline_limbs([l0, 0]);
                l0 == exp[0]
            }
            2 => {
                let l0 = self.limbs[base];
                let l1 = self.limbs[base + 1];
                out.set_inline_limbs([l0, l1]);
                l0 == exp[0] && l1 == exp[1]
            }
            _ => {
                let slice = &self.limbs[base..base + self.limbs_per_word];
                out.copy_limbs_from(slice);
                slice == exp
            }
        }
    }

    /// Overwrites the stored word at `row` with `data` (a limb copy).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the data width does not match.
    #[inline]
    pub fn set_word(&mut self, row: u64, data: &DataWord) {
        debug_assert_eq!(data.width(), self.width, "plane write width mismatch");
        let base = self.base(row);
        self.limbs[base..base + self.limbs_per_word].copy_from_slice(data.limbs());
        self.mark_dirty(row);
    }

    /// The stored value of bit `bit` of word `row`.
    #[inline]
    pub fn bit(&self, row: u64, bit: usize) -> bool {
        debug_assert!(bit < self.width);
        (self.limbs[self.base(row) + bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Sets the stored value of bit `bit` of word `row`.
    #[inline]
    pub fn set_bit(&mut self, row: u64, bit: usize, value: bool) {
        debug_assert!(bit < self.width);
        let index = self.base(row) + bit / 64;
        let limb = &mut self.limbs[index];
        let mask = 1u64 << (bit % 64);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
        self.mark_dirty(row);
    }

    /// True if every stored cell is zero.
    ///
    /// Only the rows marked dirty are scanned (non-zero rows are a
    /// subset of the dirty rows), so a pristine or sparsely written
    /// plane answers in O(rows touched) — this is what lets a diagnosis
    /// controller prove "this memory still holds its power-on state"
    /// without walking every limb.
    pub fn all_zero(&self) -> bool {
        let limbs_per_word = self.limbs_per_word;
        for (limb_index, &dirty_limb) in self.dirty.iter().enumerate() {
            let mut pending = dirty_limb;
            while pending != 0 {
                let row = limb_index * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let base = row * limbs_per_word;
                if self.limbs[base..base + limbs_per_word]
                    .iter()
                    .any(|&limb| limb != 0)
                {
                    return false;
                }
            }
        }
        true
    }

    /// The rows currently holding at least one non-zero bit, ascending.
    ///
    /// Like [`BitPlanes::all_zero`] this scans only the dirty rows, so
    /// the cost is O(rows touched since the last clear) — the plane-level
    /// helper behind the diagnosis fast path's "which rows can deviate
    /// from the golden expectation" question.
    pub fn nonzero_rows(&self) -> Vec<u64> {
        let limbs_per_word = self.limbs_per_word;
        let mut rows = Vec::new();
        for (limb_index, &dirty_limb) in self.dirty.iter().enumerate() {
            let mut pending = dirty_limb;
            while pending != 0 {
                let row = limb_index * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let base = row * limbs_per_word;
                if self.limbs[base..base + limbs_per_word]
                    .iter()
                    .any(|&limb| limb != 0)
                {
                    rows.push(row as u64);
                }
            }
        }
        rows
    }

    /// Resets every cell to zero without reallocating.
    ///
    /// Only the rows mutated since the previous clear are zeroed (plus
    /// the dirty bitset itself), so a reset after a sparse programme is
    /// O(rows touched) — the enabling detail for pruned single-row fault
    /// simulation, where a full-plane wipe per fault would dominate.
    pub fn clear(&mut self) {
        let limbs_per_word = self.limbs_per_word;
        for (limb_index, dirty_limb) in self.dirty.iter_mut().enumerate() {
            let mut pending = *dirty_limb;
            while pending != 0 {
                let row = limb_index * 64 + pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let base = row * limbs_per_word;
                self.limbs[base..base + limbs_per_word].fill(0);
            }
            *dirty_limb = 0;
        }
    }

    /// True if the top-limb mask invariant holds for every word (used by
    /// debug assertions and tests).
    pub fn invariant_holds(&self) -> bool {
        if self.top_mask == u64::MAX {
            return true;
        }
        self.limbs
            .iter()
            .skip(self.limbs_per_word - 1)
            .step_by(self.limbs_per_word)
            .all(|&top| top & !self.top_mask == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes(words: u64, width: usize) -> BitPlanes {
        BitPlanes::new(MemConfig::new(words, width).unwrap())
    }

    #[test]
    fn starts_all_zero_and_round_trips_words() {
        let mut p = planes(8, 100);
        assert_eq!(p.word(3), DataWord::zero(100));
        let mut data = DataWord::zero(100);
        data.set(0, true);
        data.set(64, true);
        data.set(99, true);
        p.set_word(3, &data);
        assert_eq!(p.word(3), data);
        assert_eq!(p.word(2), DataWord::zero(100));
        assert_eq!(p.word(4), DataWord::zero(100));
        assert!(p.invariant_holds());
    }

    #[test]
    fn bit_accessors_cross_limb_boundaries() {
        let mut p = planes(4, 65);
        p.set_bit(1, 63, true);
        p.set_bit(1, 64, true);
        assert!(p.bit(1, 63) && p.bit(1, 64));
        assert!(!p.bit(1, 0) && !p.bit(0, 63) && !p.bit(2, 64));
        p.set_bit(1, 64, false);
        assert!(!p.bit(1, 64));
        assert!(p.invariant_holds());
    }

    #[test]
    fn set_word_keeps_neighbouring_rows_intact() {
        let mut p = planes(3, 64);
        p.set_word(1, &DataWord::splat(true, 64));
        assert_eq!(p.word(0), DataWord::zero(64));
        assert_eq!(p.word(1), DataWord::splat(true, 64));
        assert_eq!(p.word(2), DataWord::zero(64));
        p.clear();
        assert_eq!(p.word(1), DataWord::zero(64));
    }

    #[test]
    fn clear_zeroes_only_and_exactly_the_dirty_rows() {
        let mut p = planes(200, 100);
        assert_eq!(p.dirty_row_count(), 0);
        p.set_word(3, &DataWord::splat(true, 100));
        p.set_bit(70, 99, true);
        p.set_bit(70, 0, true);
        p.set_word(199, &DataWord::splat(true, 100));
        assert_eq!(p.dirty_row_count(), 3);
        p.clear();
        assert_eq!(p.dirty_row_count(), 0);
        for row in 0..200u64 {
            assert_eq!(p.word(row), DataWord::zero(100), "row {row} not cleared");
        }
        assert!(p.invariant_holds());
        // Clearing a clean plane is a no-op.
        p.clear();
        assert_eq!(p.dirty_row_count(), 0);
    }

    #[test]
    fn all_zero_and_nonzero_rows_track_contents_not_bookkeeping() {
        let mut p = planes(200, 100);
        assert!(p.all_zero());
        assert!(p.nonzero_rows().is_empty());
        p.set_word(7, &DataWord::splat(true, 100));
        p.set_bit(150, 99, true);
        // A dirty row written back to zero must not count as non-zero.
        p.set_word(42, &DataWord::splat(true, 100));
        p.set_word(42, &DataWord::zero(100));
        assert!(!p.all_zero());
        assert_eq!(p.nonzero_rows(), vec![7, 150]);
        assert_eq!(p.dirty_row_count(), 3);
        p.clear();
        assert!(p.all_zero());
        assert!(p.nonzero_rows().is_empty());
    }

    #[test]
    fn equality_ignores_dirty_bookkeeping() {
        let mut a = planes(8, 65);
        let mut b = planes(8, 65);
        a.set_word(2, &DataWord::splat(true, 65));
        a.set_word(2, &DataWord::zero(65));
        a.set_bit(5, 64, true);
        b.set_bit(5, 64, true);
        // `a` has an extra dirty row (2) but identical contents.
        assert_eq!(a, b);
        assert_ne!(a.dirty_row_count(), b.dirty_row_count());
    }

    #[test]
    fn geometry_accessors() {
        let p = planes(2, 100);
        assert_eq!(p.width(), 100);
        assert_eq!(p.limbs_per_word(), 2);
        assert_eq!(planes(2, 64).limbs_per_word(), 1);
        assert_eq!(planes(2, 65).limbs_per_word(), 2);
    }
}
