//! Measured-cost calibration for the executor's shard cost models.
//!
//! The partition strategies ([`crate::plan::cost_ranges`],
//! [`crate::plan::steal_schedule`]) balance *estimated* per-item costs.
//! Until this module existed every call site hard-coded its own
//! estimate: the fault simulator charged one unit per row swept,
//! diagnosis charged `io_width + 4`, the SoC builder charged one unit
//! per cell. Those hand-tuned models get the *shape* of the skew right
//! but not the scale — and once heterogeneous jobs from different
//! subsystems are flattened into one executor run (fleet batching), the
//! scales must be commensurable or the balancer starves one subsystem
//! to overfeed another.
//!
//! A [`CostCalibration`] table maps each [`CostDomain`] to an affine
//! model `cost(units) = fixed + unit · units`, in picoseconds, where
//! `units` is the call site's existing physical measure (rows swept,
//! data bits, cells). Three sources, selected by [`CALIB_ENV`]:
//!
//! * **hand-tuned** — the pre-calibration constants, kept as the
//!   reference point ablations compare against;
//! * **measured** (the default) — weights harvested from the committed
//!   `BENCH_results.json` ledger at build time, so Cost/Steal
//!   boundaries track timings actually observed on the benchmark
//!   machine;
//! * **online** — measured defaults refined at run time by a
//!   least-squares fit over observed shard timings, which the executors
//!   report (only in this mode) via [`record_shard_sample`].
//!
//! Calibration influences **shard boundaries only, never results**: the
//! executors guarantee byte-identical output at any cost model (the
//! cost closure cannot touch the work closure's inputs), so a wildly
//! wrong calibration costs wall-clock time, not correctness. The
//! determinism suites exercise exactly this freedom by sweeping
//! strategies and worker counts over fixed inputs.

use std::sync::Mutex;

use crate::env;

/// Environment variable selecting the calibration source:
/// `hand-tuned` (alias `model`, `off`), `measured` (alias `baked`, the
/// default) or `online`, case-insensitive. A set-but-malformed value
/// falls back to the default with a one-time warning, like every other
/// `ESRAM_*` knob.
pub const CALIB_ENV: &str = "ESRAM_COST_CALIB";

/// The committed benchmark ledger the measured defaults are harvested
/// from (baked in at compile time so the crate stays dependency-free
/// and the defaults cannot drift from the checked-in numbers).
const COMMITTED_LEDGER: &str = include_str!("../../../BENCH_results.json");

/// Which subsystem a shard's work items belong to, i.e. which row of
/// the calibration table prices them.
///
/// Tagged onto a [`crate::ShardPlan`] via
/// [`crate::ShardPlan::with_domain`] by the call sites; the executors
/// use the tag only to attribute online samples — untagged plans are
/// never sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostDomain {
    /// March fault simulation; one unit = one row swept (the fault
    /// simulator's pruned-sweep row count).
    FaultSim,
    /// Population diagnosis; one unit = one bit of a member's I/O
    /// width (serial-interface delivery dominates per-bit work).
    Diagnosis,
    /// SoC population construction; one unit = one memory cell.
    SocBuild,
}

impl CostDomain {
    /// All domains, in table order.
    pub fn all() -> [CostDomain; 3] {
        [CostDomain::FaultSim, CostDomain::Diagnosis, CostDomain::SocBuild]
    }

    /// Stable lower-case name used in exported calibration tables.
    pub fn name(&self) -> &'static str {
        match self {
            CostDomain::FaultSim => "fault_sim",
            CostDomain::Diagnosis => "diagnosis",
            CostDomain::SocBuild => "soc_build",
        }
    }

    /// What one unit means physically, for exported tables.
    pub fn unit_name(&self) -> &'static str {
        match self {
            CostDomain::FaultSim => "row_sweep",
            CostDomain::Diagnosis => "io_bit",
            CostDomain::SocBuild => "cell",
        }
    }

    fn index(self) -> usize {
        match self {
            CostDomain::FaultSim => 0,
            CostDomain::Diagnosis => 1,
            CostDomain::SocBuild => 2,
        }
    }
}

/// Affine per-item cost model for one domain: `fixed + unit · units`,
/// both in picoseconds (hand-tuned weights use dimensionless units —
/// only ratios within and across domains matter to the balancer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainWeights {
    /// Cost charged per work item regardless of size (setup, golden
    /// reset, per-memory bookkeeping).
    pub fixed: u64,
    /// Cost charged per unit of the domain's physical measure.
    pub unit: u64,
}

impl DomainWeights {
    /// Prices an item of the given size.
    pub fn cost(&self, units: u64) -> u64 {
        self.fixed.saturating_add(self.unit.saturating_mul(units))
    }
}

/// Where a calibration table's weights came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalibrationMode {
    /// The pre-calibration hand-tuned constants.
    HandTuned,
    /// Weights harvested from the committed benchmark ledger.
    #[default]
    Measured,
    /// Measured defaults refined online from observed shard timings.
    Online,
}

impl CalibrationMode {
    /// Parses an environment-variable value (case-insensitive,
    /// surrounding whitespace ignored).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "hand-tuned" | "handtuned" | "hand" | "model" | "off" => Some(CalibrationMode::HandTuned),
            "measured" | "baked" => Some(CalibrationMode::Measured),
            "online" => Some(CalibrationMode::Online),
            _ => None,
        }
    }

    /// The mode selected by [`CALIB_ENV`], defaulting to
    /// [`CalibrationMode::Measured`] when unset; a set-but-malformed
    /// value warns once and takes the same default.
    pub fn from_env() -> Self {
        env::read_knob(CALIB_ENV, CalibrationMode::parse, || {
            format!("the default calibration ({:?})", CalibrationMode::default())
        })
        .unwrap_or_default()
    }
}

/// One calibration table: a [`DomainWeights`] row per [`CostDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostCalibration {
    /// Fault-simulation weights (units: rows swept).
    pub sim: DomainWeights,
    /// Diagnosis weights (units: I/O-width bits).
    pub diag: DomainWeights,
    /// SoC-build weights (units: cells).
    pub build: DomainWeights,
}

/// Geometry constants of the benchmark entries the measured weights are
/// derived from (512 memories of 512 words × 100 bits; the
/// heterogeneous universe models 360 single-row + 40 full-sweep
/// faults). Kept here, next to the derivation, so a bench reshape that
/// invalidates them fails the calibration unit tests instead of
/// silently skewing the weights.
const BENCH_POPULATION: u64 = 512;
const BENCH_WORDS: u64 = 512;
const BENCH_WIDTH: u64 = 100;
const HET_UNIVERSE_ROW_UNITS: u64 = 360 + 40 * BENCH_WORDS;
const BENCH_SCALE_FAULTS: u64 = 256;

impl CostCalibration {
    /// The pre-calibration constants: fault sim charged its pruned row
    /// count, diagnosis charged `io_width + 4`, the builder charged the
    /// cell count. Reproduces the historical shard boundaries exactly.
    pub const fn hand_tuned() -> Self {
        CostCalibration {
            sim: DomainWeights { fixed: 0, unit: 1 },
            diag: DomainWeights { fixed: 4, unit: 1 },
            build: DomainWeights { fixed: 0, unit: 1 },
        }
    }

    /// Weights harvested from the committed `BENCH_results.json`
    /// (parsed once per process). Falls back to
    /// [`CostCalibration::hand_tuned`] if the ledger is ever missing
    /// the needed entries (a fresh ledger regenerated with a renamed
    /// bench, say) — a worse balance, never an error.
    pub fn measured() -> Self {
        use std::sync::OnceLock;
        static MEASURED: OnceLock<CostCalibration> = OnceLock::new();
        *MEASURED.get_or_init(|| Self::from_ledger(COMMITTED_LEDGER).unwrap_or_else(Self::hand_tuned))
    }

    /// Derives a table from benchmark-ledger text.
    ///
    /// * `sim.unit` — mean of the heterogeneous whole-universe sweep
    ///   divided by its modeled row units (360 single-row + 40
    ///   full-sweep faults).
    /// * `sim.fixed` — benchmark-scale per-fault mean minus one row
    ///   unit: the residual setup cost of a mostly-pruned fault
    ///   (golden reset + injection), a deliberate upper bound since the
    ///   population holds a few multi-row faults.
    /// * `diag.unit` — per-bit serial-interface delivery cost from the
    ///   100-bit PSC serialisation microbench.
    /// * `diag.fixed` — per-memory mean of the 512-memory sequential
    ///   diagnosis minus the width's worth of per-bit cost. Measured
    ///   fixed cost dominates width cost — the single biggest deviation
    ///   from the hand-tuned `io_width + 4` model.
    /// * `build.unit` — per-cell cost of the 512-memory sequential SoC
    ///   build; `build.fixed` stays 0 (construction is cell-dominated).
    pub fn from_ledger(text: &str) -> Option<Self> {
        let het_universe = ledger_mean_ns(text, "fault_sim_heterogeneous/whole_universe_sequential")?;
        let scale_sharded = ledger_mean_ns(text, "fault_sim_throughput/benchmark_scale_sharded")?;
        let psc_100 = ledger_mean_ns(text, "interface_cycles/psc_serialize_100_bits")?;
        let diag_512 = ledger_mean_ns(text, "time_models/fast_scheme_diagnose_512mem_sequential")?;
        let build_512 = ledger_mean_ns(text, "time_models/soc_build_512mem_sequential")?;

        let sim_unit = (het_universe * 1000) / HET_UNIVERSE_ROW_UNITS;
        let sim_fixed = ((scale_sharded * 1000) / BENCH_SCALE_FAULTS).saturating_sub(sim_unit);
        let diag_unit = (psc_100 * 1000) / BENCH_WIDTH;
        let diag_fixed = ((diag_512 * 1000) / BENCH_POPULATION).saturating_sub(diag_unit * BENCH_WIDTH);
        let build_unit = (build_512 * 1000) / (BENCH_POPULATION * BENCH_WORDS * BENCH_WIDTH);

        // A ledger so skewed that a unit weight rounds to zero would
        // make every item of the domain free; refuse it.
        if sim_unit == 0 || diag_unit == 0 || build_unit == 0 {
            return None;
        }
        Some(CostCalibration {
            sim: DomainWeights {
                fixed: sim_fixed,
                unit: sim_unit,
            },
            diag: DomainWeights {
                fixed: diag_fixed,
                unit: diag_unit,
            },
            build: DomainWeights {
                fixed: 0,
                unit: build_unit,
            },
        })
    }

    /// The active table per [`CALIB_ENV`]: hand-tuned, measured, or
    /// measured overlaid with any online-refined domains.
    pub fn current() -> Self {
        match CalibrationMode::from_env() {
            CalibrationMode::HandTuned => Self::hand_tuned(),
            CalibrationMode::Measured => Self::measured(),
            CalibrationMode::Online => {
                let mut table = Self::measured();
                for domain in CostDomain::all() {
                    if let Some(weights) = refined_weights(domain) {
                        *table.weights_mut(domain) = weights;
                    }
                }
                table
            }
        }
    }

    /// The weights row for a domain.
    pub fn weights(&self, domain: CostDomain) -> DomainWeights {
        match domain {
            CostDomain::FaultSim => self.sim,
            CostDomain::Diagnosis => self.diag,
            CostDomain::SocBuild => self.build,
        }
    }

    fn weights_mut(&mut self, domain: CostDomain) -> &mut DomainWeights {
        match domain {
            CostDomain::FaultSim => &mut self.sim,
            CostDomain::Diagnosis => &mut self.diag,
            CostDomain::SocBuild => &mut self.build,
        }
    }

    /// Prices an item of `units` size in the given domain.
    pub fn cost(&self, domain: CostDomain, units: u64) -> u64 {
        self.weights(domain).cost(units)
    }

    /// Serialises the table for the CI calibration artifact (stable
    /// hand-rolled JSON; the crate deliberately has no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"calibration\": [\n");
        for (index, domain) in CostDomain::all().into_iter().enumerate() {
            let weights = self.weights(domain);
            out.push_str(&format!(
                "    {{\"domain\": \"{}\", \"unit\": \"{}\", \"fixed_ps\": {}, \"unit_ps\": {}}}{}\n",
                domain.name(),
                domain.unit_name(),
                weights.fixed,
                weights.unit,
                if index + 1 < CostDomain::all().len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl Default for CostCalibration {
    /// The active table (same as [`CostCalibration::current`]).
    fn default() -> Self {
        Self::current()
    }
}

/// Extracts `mean_ns` for a named entry from benchmark-ledger text
/// (the fixed `{"name": ..., "mean_ns": ...}` shape the bench harness
/// writes; scanned textually to keep the crate dependency-free).
fn ledger_mean_ns(text: &str, name: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{name}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let mean_at = rest.find("\"mean_ns\":")? + "\"mean_ns\":".len();
    let digits: String = rest[mean_at..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Running sums for the per-domain least-squares fit
/// `elapsed_ns ≈ a · items + b · units` over observed shard timings.
#[derive(Debug, Clone, Copy, Default)]
struct SampleSums {
    count: u64,
    ii: f64,
    iu: f64,
    uu: f64,
    in_: f64,
    un: f64,
}

const ZERO_SUMS: SampleSums = SampleSums {
    count: 0,
    ii: 0.0,
    iu: 0.0,
    uu: 0.0,
    in_: 0.0,
    un: 0.0,
};

static SAMPLES: Mutex<[SampleSums; 3]> = Mutex::new([ZERO_SUMS; 3]);

/// Records one observed shard timing for the online sampler: a shard of
/// `items` work items totalling `units` domain units took `elapsed_ns`.
/// Called by the executors for plans tagged with a domain, and only
/// when [`CALIB_ENV`] selects online mode; also available to external
/// harnesses feeding their own timings.
pub fn record_shard_sample(domain: CostDomain, items: u64, units: u64, elapsed_ns: u64) {
    if items == 0 {
        return;
    }
    let mut samples = SAMPLES.lock().expect("calibration sample store poisoned");
    let sums = &mut samples[domain.index()];
    let (i, u, n) = (items as f64, units as f64, elapsed_ns as f64);
    sums.count += 1;
    sums.ii += i * i;
    sums.iu += i * u;
    sums.uu += u * u;
    sums.in_ += i * n;
    sums.un += u * n;
}

/// Number of shard samples recorded for a domain in this process.
pub fn observed_shard_samples(domain: CostDomain) -> u64 {
    SAMPLES.lock().expect("calibration sample store poisoned")[domain.index()].count
}

/// Discards all recorded samples (test isolation).
pub fn reset_shard_samples() {
    let mut samples = SAMPLES.lock().expect("calibration sample store poisoned");
    *samples = [SampleSums::default(); 3];
}

/// Solves the 2×2 normal equations for `(fixed, unit)` in ns/item and
/// ns/unit, returning picosecond weights. `None` until at least two
/// samples exist or while the system is too degenerate to solve (e.g.
/// all samples collinear with zero determinant *and* zero unit mass).
fn refined_weights(domain: CostDomain) -> Option<DomainWeights> {
    let sums = SAMPLES.lock().expect("calibration sample store poisoned")[domain.index()];
    if sums.count < 2 {
        return None;
    }
    let det = sums.ii * sums.uu - sums.iu * sums.iu;
    let (fixed_ns, unit_ns) = if det.abs() > 1e-9 * sums.ii.max(1.0) * sums.uu.max(1.0) {
        (
            (sums.in_ * sums.uu - sums.un * sums.iu) / det,
            (sums.ii * sums.un - sums.iu * sums.in_) / det,
        )
    } else if sums.uu > 0.0 {
        // Collinear samples (e.g. constant units-per-item): attribute
        // everything to the unit weight.
        (0.0, sums.un / sums.uu)
    } else if sums.ii > 0.0 {
        (sums.in_ / sums.ii, 0.0)
    } else {
        return None;
    };
    let fixed = (fixed_ns.max(0.0) * 1000.0).round() as u64;
    let unit = (unit_ns.max(0.0) * 1000.0).round() as u64;
    if fixed == 0 && unit == 0 {
        return None;
    }
    Some(DomainWeights { fixed, unit })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_tuned_reproduces_the_legacy_constants() {
        let table = CostCalibration::hand_tuned();
        // Fault sim charged exactly its row count.
        assert_eq!(table.cost(CostDomain::FaultSim, 1), 1);
        assert_eq!(table.cost(CostDomain::FaultSim, 512), 512);
        // Diagnosis charged io_width + 4.
        assert_eq!(table.cost(CostDomain::Diagnosis, 100), 104);
        // Build charged the cell count.
        assert_eq!(table.cost(CostDomain::SocBuild, 51_200), 51_200);
    }

    #[test]
    fn measured_weights_parse_from_the_committed_ledger() {
        let table = CostCalibration::measured();
        assert_ne!(
            table,
            CostCalibration::hand_tuned(),
            "ledger must actually be used"
        );
        for domain in CostDomain::all() {
            assert!(table.weights(domain).unit > 0, "{domain:?} unit weight");
        }
        // The per-memory fixed cost dominating the per-bit cost is the
        // point of measuring: a 100-bit memory is nowhere near 100×
        // cheaper than nothing.
        assert!(table.diag.fixed > table.diag.unit * 100);
        // A full-sweep 512-word fault must still dwarf a pruned one.
        let pruned = table.cost(CostDomain::FaultSim, 1);
        let full = table.cost(CostDomain::FaultSim, 512);
        assert!(full > pruned * 20);
    }

    #[test]
    fn from_ledger_rejects_incomplete_ledgers() {
        assert_eq!(CostCalibration::from_ledger(""), None);
        assert_eq!(CostCalibration::from_ledger("{\"benches\": []}"), None);
    }

    #[test]
    fn ledger_scan_extracts_mean_ns() {
        let text = r#"{"benches": [
            {"name": "a/b", "mean_ns": 123, "min_ns": 100, "samples": 10},
            {"name": "c/d", "mean_ns": 456, "min_ns": 400, "samples": 10}
        ]}"#;
        assert_eq!(ledger_mean_ns(text, "a/b"), Some(123));
        assert_eq!(ledger_mean_ns(text, "c/d"), Some(456));
        assert_eq!(ledger_mean_ns(text, "e/f"), None);
    }

    #[test]
    fn mode_parses_case_insensitively_and_rejects_garbage() {
        assert_eq!(
            CalibrationMode::parse(" Measured "),
            Some(CalibrationMode::Measured)
        );
        assert_eq!(
            CalibrationMode::parse("hand-tuned"),
            Some(CalibrationMode::HandTuned)
        );
        assert_eq!(CalibrationMode::parse("OFF"), Some(CalibrationMode::HandTuned));
        assert_eq!(CalibrationMode::parse("online"), Some(CalibrationMode::Online));
        assert_eq!(CalibrationMode::parse("onlien"), None);
        assert_eq!(CalibrationMode::parse(""), None);
    }

    #[test]
    fn online_fit_recovers_known_weights() {
        reset_shard_samples();
        // Synthesise shards obeying elapsed = 5·items + 3·units ns with
        // varying items/units mixes (so the system is well-posed).
        for (items, units) in [(1u64, 10u64), (2, 10), (4, 100), (8, 20), (16, 400)] {
            record_shard_sample(CostDomain::SocBuild, items, units, 5 * items + 3 * units);
        }
        let weights = refined_weights(CostDomain::SocBuild).expect("fit must converge");
        assert_eq!(weights.fixed, 5_000, "per-item ns → ps");
        assert_eq!(weights.unit, 3_000, "per-unit ns → ps");
        reset_shard_samples();
    }

    #[test]
    fn online_fit_requires_two_samples_and_handles_collinearity() {
        reset_shard_samples();
        assert_eq!(refined_weights(CostDomain::FaultSim), None);
        record_shard_sample(CostDomain::FaultSim, 4, 40, 400);
        assert_eq!(
            refined_weights(CostDomain::FaultSim),
            None,
            "one sample is not a fit"
        );
        // Second sample is collinear (units = 10 × items): the fit
        // degrades to a pure unit weight instead of dividing by a ~0
        // determinant.
        record_shard_sample(CostDomain::FaultSim, 8, 80, 800);
        let weights = refined_weights(CostDomain::FaultSim).expect("collinear fallback");
        assert_eq!(weights.fixed, 0);
        assert_eq!(weights.unit, 10_000);
        reset_shard_samples();
    }

    #[test]
    fn json_export_names_every_domain() {
        let json = CostCalibration::measured().to_json();
        for domain in CostDomain::all() {
            assert!(json.contains(domain.name()), "{json}");
            assert!(json.contains(domain.unit_name()), "{json}");
        }
        assert!(json.contains("fixed_ps"));
        assert!(json.contains("unit_ps"));
    }
}
