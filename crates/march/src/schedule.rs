//! March schedules: sequences of (data background, March test) phases.
//!
//! Algorithms that use a single data background are plain
//! [`MarchTest`]s; algorithms such as March CW repeat element groups
//! under several backgrounds. A [`MarchSchedule`] captures the full
//! multi-background programme the BISD controller executes.

use crate::background::{BackgroundPatterns, DataBackground};
use crate::ops::MarchTest;
use std::fmt;

/// One phase of a schedule: a March test executed under one background.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePhase {
    /// Data background active during this phase.
    pub background: DataBackground,
    /// March test executed during this phase.
    pub test: MarchTest,
}

impl SchedulePhase {
    /// Creates a phase.
    pub fn new(background: DataBackground, test: MarchTest) -> Self {
        SchedulePhase { background, test }
    }
}

/// A complete multi-background March programme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchSchedule {
    name: String,
    phases: Vec<SchedulePhase>,
}

impl MarchSchedule {
    /// Creates a schedule from its phases.
    pub fn new(name: impl Into<String>, phases: Vec<SchedulePhase>) -> Self {
        MarchSchedule {
            name: name.into(),
            phases,
        }
    }

    /// Wraps a single-background test into a one-phase schedule.
    pub fn single(test: MarchTest, background: DataBackground) -> Self {
        let name = test.name().to_string();
        MarchSchedule {
            name,
            phases: vec![SchedulePhase::new(background, test)],
        }
    }

    /// Name of the programme (e.g. `"March CW"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[SchedulePhase] {
        &self.phases
    }

    /// Total operations per address summed over all phases.
    pub fn complexity_per_address(&self) -> usize {
        self.phases.iter().map(|p| p.test.complexity_per_address()).sum()
    }

    /// Total operations for a memory with `words` addresses.
    pub fn operation_count(&self, words: u64) -> u64 {
        self.phases.iter().map(|p| p.test.operation_count(words)).sum()
    }

    /// Total read operations for a memory with `words` addresses.
    pub fn read_count(&self, words: u64) -> u64 {
        self.phases.iter().map(|p| p.test.read_count(words)).sum()
    }

    /// Total write operations for a memory with `words` addresses.
    pub fn write_count(&self, words: u64) -> u64 {
        self.phases.iter().map(|p| p.test.write_count(words)).sum()
    }

    /// Total number of March elements across all phases.
    pub fn element_count(&self) -> usize {
        self.phases.iter().map(|p| p.test.element_count()).sum()
    }

    /// Total retention-pause time in milliseconds across all phases.
    pub fn pause_ms(&self) -> u64 {
        self.phases.iter().map(|p| p.test.pause_ms()).sum()
    }

    /// True if any phase contains NWRC writes.
    pub fn has_nwrc(&self) -> bool {
        self.phases.iter().any(|p| p.test.has_nwrc())
    }

    /// True if any phase contains retention pauses.
    pub fn has_pause(&self) -> bool {
        self.phases.iter().any(|p| p.test.has_pause())
    }

    /// Applies a test transformation (e.g. the NWRTM merge) to the last
    /// phase of the schedule, returning the transformed schedule.
    pub fn map_last_phase<F>(&self, name: impl Into<String>, transform: F) -> MarchSchedule
    where
        F: FnOnce(&MarchTest) -> MarchTest,
    {
        let mut phases = self.phases.clone();
        if let Some(last) = phases.last_mut() {
            last.test = transform(&last.test);
        }
        MarchSchedule {
            name: name.into(),
            phases,
        }
    }
}

/// The per-phase [`BackgroundPatterns`] of one schedule at one IO width,
/// precomputed once and borrowed by every run.
///
/// Batched fault simulation executes the same schedule thousands of
/// times (once per fault); building the pattern words per run would put
/// `O(width)` bit assembly back on the hot path, so the simulator builds
/// a `SchedulePatterns` once per universe and every worker thread
/// borrows it (the patterns are immutable shared data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePatterns {
    phases: Vec<BackgroundPatterns>,
}

impl SchedulePatterns {
    /// Precomputes the pattern words of every phase of `schedule` for a
    /// memory of `width` IO bits.
    pub fn new(schedule: &MarchSchedule, width: usize) -> Self {
        SchedulePatterns {
            phases: schedule
                .phases()
                .iter()
                .map(|phase| phase.background.patterns(width))
                .collect(),
        }
    }

    /// The precomputed patterns of phase `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (the patterns were built for a
    /// different schedule).
    pub fn phase(&self, index: usize) -> &BackgroundPatterns {
        &self.phases[index]
    }

    /// Number of phases the patterns were built for.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl fmt::Display for MarchSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} phases, {} ops/address)",
            self.name,
            self.phases.len(),
            self.complexity_per_address()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;

    #[test]
    fn single_wraps_a_test() {
        let schedule = MarchSchedule::single(algorithms::march_c_minus(), DataBackground::Solid);
        assert_eq!(schedule.name(), "March C-");
        assert_eq!(schedule.phases().len(), 1);
        assert_eq!(schedule.complexity_per_address(), 10);
        assert_eq!(schedule.operation_count(512), 5120);
    }

    #[test]
    fn march_cw_schedule_counts_match_eq2_structure() {
        // March CW for c = 100: 10 ops/address under solid background plus
        // 7 background phases of 5 ops/address = 45 ops/address total.
        let schedule = algorithms::march_cw(100);
        assert_eq!(schedule.complexity_per_address(), 10 + 7 * 5);
        assert_eq!(schedule.read_count(1), 5 + 7 * 2);
        assert_eq!(schedule.write_count(1), 5 + 7 * 3);
        assert!(!schedule.has_nwrc());
    }

    #[test]
    fn map_last_phase_applies_nwrtm_to_the_final_phase_only() {
        let schedule = algorithms::march_cw(8);
        let with_drf = schedule.map_last_phase("March CW + NWRTM", algorithms::with_nwrtm);
        assert!(with_drf.has_nwrc());
        assert_eq!(with_drf.name(), "March CW + NWRTM");
        // Only the last phase gained operations.
        assert_eq!(
            with_drf.complexity_per_address(),
            schedule.complexity_per_address() + 5
        );
        assert!(!with_drf.phases()[0].test.has_nwrc());
        assert!(with_drf.phases().last().unwrap().test.has_nwrc());
    }

    #[test]
    fn display_summarises_the_schedule() {
        let text = algorithms::march_cw(100).to_string();
        assert!(text.contains("March CW"));
        assert!(text.contains("8 phases"));
        assert!(text.contains("45 ops/address"));
    }
}
