//! Abstractions over memory implementations.
//!
//! The March engine and the fault-injection layer only need a small
//! behavioural surface; abstracting it lets the same programmes drive
//! both the packed [`Sram`](crate::array::Sram) and the dense
//! [`ReferenceSram`](crate::reference::ReferenceSram), which is how the
//! dense-vs-overlay equivalence property tests and the before/after
//! throughput benches are built.

use crate::array::Sram;
use crate::cell::{CellCoord, CellFault};
use crate::config::{Address, MemConfig};
use crate::decoder::DecoderFault;
use crate::error::MemError;
use crate::reference::ReferenceSram;
use crate::word::DataWord;

/// The port surface a March programme needs from a memory.
pub trait MemoryPort {
    /// Geometry of the memory.
    fn config(&self) -> MemConfig;

    /// Normal write cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the data width
    /// does not match the memory IO width.
    fn write(&mut self, address: Address, data: &DataWord) -> Result<(), MemError>;

    /// No Write Recovery Cycle write.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the data width
    /// does not match the memory IO width.
    fn write_nwrc(&mut self, address: Address, data: &DataWord) -> Result<(), MemError>;

    /// Normal read cycle; returns the word observed at the port.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    fn read(&mut self, address: Address) -> Result<DataWord, MemError>;

    /// Fused read-and-compare: a normal read whose result is checked
    /// against `expected`, returning the observed word only on a
    /// mismatch. Implementations may avoid materialising the observed
    /// word when it matches (the packed array compares limbs in place).
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    fn read_expect(&mut self, address: Address, expected: &DataWord) -> Result<Option<DataWord>, MemError> {
        let observed = self.read(address)?;
        Ok(if &observed == expected {
            None
        } else {
            Some(observed)
        })
    }

    /// Retention pause of `pause_ms` milliseconds.
    fn elapse_retention(&mut self, pause_ms: f64);
}

/// The injection surface faults need from a memory.
pub trait FaultTarget {
    /// Injects a behavioural fault into one bit cell.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate (or an aggressor coordinate)
    /// is outside the memory.
    fn inject_cell_fault(&mut self, coord: CellCoord, fault: CellFault) -> Result<(), MemError>;

    /// Injects an address-decoder fault.
    ///
    /// # Errors
    ///
    /// Returns an error if the fault references an address outside the
    /// memory.
    fn inject_decoder_fault(&mut self, fault: DecoderFault) -> Result<(), MemError>;
}

/// Forwarding impl so populations can be assembled from borrowed
/// memories (e.g. `bisd` diagnosing `(MemoryId, &mut Sram)` pairs built
/// from a population it does not own).
impl<M: MemoryPort + ?Sized> MemoryPort for &mut M {
    fn config(&self) -> MemConfig {
        (**self).config()
    }

    fn write(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        (**self).write(address, data)
    }

    fn write_nwrc(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        (**self).write_nwrc(address, data)
    }

    fn read(&mut self, address: Address) -> Result<DataWord, MemError> {
        (**self).read(address)
    }

    #[inline]
    fn read_expect(&mut self, address: Address, expected: &DataWord) -> Result<Option<DataWord>, MemError> {
        (**self).read_expect(address, expected)
    }

    fn elapse_retention(&mut self, pause_ms: f64) {
        (**self).elapse_retention(pause_ms);
    }
}

impl MemoryPort for Sram {
    fn config(&self) -> MemConfig {
        Sram::config(self)
    }

    fn write(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        Sram::write(self, address, data)
    }

    fn write_nwrc(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        Sram::write_nwrc(self, address, data)
    }

    fn read(&mut self, address: Address) -> Result<DataWord, MemError> {
        Sram::read(self, address)
    }

    #[inline]
    fn read_expect(&mut self, address: Address, expected: &DataWord) -> Result<Option<DataWord>, MemError> {
        Sram::read_expect(self, address, expected)
    }

    fn elapse_retention(&mut self, pause_ms: f64) {
        Sram::elapse_retention(self, pause_ms);
    }
}

impl FaultTarget for Sram {
    fn inject_cell_fault(&mut self, coord: CellCoord, fault: CellFault) -> Result<(), MemError> {
        Sram::inject_cell_fault(self, coord, fault)
    }

    fn inject_decoder_fault(&mut self, fault: DecoderFault) -> Result<(), MemError> {
        Sram::inject_decoder_fault(self, fault)
    }
}

impl MemoryPort for ReferenceSram {
    fn config(&self) -> MemConfig {
        ReferenceSram::config(self)
    }

    fn write(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        ReferenceSram::write(self, address, data)
    }

    fn write_nwrc(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        ReferenceSram::write_nwrc(self, address, data)
    }

    fn read(&mut self, address: Address) -> Result<DataWord, MemError> {
        ReferenceSram::read(self, address)
    }

    fn elapse_retention(&mut self, pause_ms: f64) {
        ReferenceSram::elapse_retention(self, pause_ms);
    }
}

impl FaultTarget for ReferenceSram {
    fn inject_cell_fault(&mut self, coord: CellCoord, fault: CellFault) -> Result<(), MemError> {
        ReferenceSram::inject_cell_fault(self, coord, fault)
    }

    fn inject_decoder_fault(&mut self, fault: DecoderFault) -> Result<(), MemError> {
        ReferenceSram::inject_decoder_fault(self, fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: MemoryPort>(mem: &mut M) -> DataWord {
        let width = mem.config().width();
        mem.write(Address::new(0), &DataWord::splat(true, width)).unwrap();
        mem.elapse_retention(1.0);
        mem.read(Address::new(0)).unwrap()
    }

    #[test]
    fn both_models_serve_the_port_trait() {
        let config = MemConfig::new(4, 9).unwrap();
        let mut packed = Sram::new(config);
        let mut dense = ReferenceSram::new(config);
        assert_eq!(roundtrip(&mut packed), roundtrip(&mut dense));
        assert_eq!(MemoryPort::config(&packed), MemoryPort::config(&dense));
    }

    #[test]
    fn both_models_serve_the_fault_target_trait() {
        fn inject<T: FaultTarget>(target: &mut T) {
            target
                .inject_cell_fault(CellCoord::new(Address::new(1), 0), CellFault::StuckAt(true))
                .unwrap();
        }
        let config = MemConfig::new(4, 2).unwrap();
        let mut packed = Sram::new(config);
        let mut dense = ReferenceSram::new(config);
        inject(&mut packed);
        inject(&mut dense);
        assert_eq!(
            MemoryPort::read(&mut packed, Address::new(1)).unwrap(),
            MemoryPort::read(&mut dense, Address::new(1)).unwrap()
        );
    }
}
