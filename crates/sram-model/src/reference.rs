//! Dense per-cell reference memory model.
//!
//! [`ReferenceSram`] is the pre-refactor implementation of the
//! behavioural e-SRAM: every bit cell is its own [`Cell`] object in a
//! dense `Vec`, and every port operation walks the word bit by bit.
//! It is kept for two purposes:
//!
//! 1. **differential testing** — property tests drive the packed
//!    [`Sram`](crate::array::Sram) and this model with identical fault
//!    injections and March programmes and assert the observed read
//!    sequences are identical;
//! 2. **benchmarking** — the `fault_sim_throughput` bench target uses it
//!    as the "before" baseline when measuring the speedup of the packed
//!    bit-plane array.
//!
//! Its semantics must never diverge from the packed array; when fixing a
//! behaviour, fix both (the equivalence property test will catch a
//! one-sided change).

use crate::cell::{Cell, CellCoord, CellFault, CouplingKind};
use crate::config::{Address, MemConfig};
use crate::decoder::{AddressDecoder, DecoderFault};
use crate::error::MemError;
use crate::retention::RetentionModel;
use crate::trace::{MemOp, OperationTrace};
use crate::word::DataWord;
use std::collections::BTreeMap;

/// The dense per-cell behavioural e-SRAM (reference oracle).
#[derive(Debug, Clone)]
pub struct ReferenceSram {
    config: MemConfig,
    cells: Vec<Cell>,
    decoder: AddressDecoder,
    trace: OperationTrace,
    retention: RetentionModel,
    last_sense: DataWord,
    coupling_index: BTreeMap<(u64, usize), Vec<CellCoord>>,
}

impl ReferenceSram {
    /// Creates a fault-free memory of the given geometry, using the
    /// paper's default retention model.
    pub fn new(config: MemConfig) -> Self {
        ReferenceSram::with_retention(config, RetentionModel::default())
    }

    /// Creates a fault-free memory with an explicit retention model.
    pub fn with_retention(config: MemConfig, retention: RetentionModel) -> Self {
        let cells = vec![Cell::new(); config.cells() as usize];
        ReferenceSram {
            config,
            cells,
            decoder: AddressDecoder::new(config),
            trace: OperationTrace::new(),
            retention,
            last_sense: DataWord::zero(config.width()),
            coupling_index: BTreeMap::new(),
        }
    }

    /// Geometry of the memory.
    pub fn config(&self) -> MemConfig {
        self.config
    }

    /// Operation trace (cycles, pauses and optionally every operation).
    pub fn trace(&self) -> &OperationTrace {
        &self.trace
    }

    /// Mutable access to the operation trace.
    pub fn trace_mut(&mut self) -> &mut OperationTrace {
        &mut self.trace
    }

    fn cell_index(&self, coord: CellCoord) -> usize {
        coord.address.index() as usize * self.config.width() + coord.bit
    }

    fn check_coord(&self, coord: CellCoord) -> Result<(), MemError> {
        self.config.check_address(coord.address)?;
        if coord.bit >= self.config.width() {
            return Err(MemError::BitOutOfRange {
                bit: coord.bit,
                width: self.config.width(),
            });
        }
        Ok(())
    }

    /// Injects a behavioural fault into one bit cell.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate (or, for coupling faults, the
    /// aggressor coordinate) is outside the memory.
    pub fn inject_cell_fault(&mut self, coord: CellCoord, fault: CellFault) -> Result<(), MemError> {
        self.check_coord(coord)?;
        if let CellFault::Coupling { aggressor, .. } = fault {
            self.check_coord(aggressor)?;
            self.coupling_index
                .entry((aggressor.address.index(), aggressor.bit))
                .or_default()
                .push(coord);
        }
        let index = self.cell_index(coord);
        self.cells[index].set_fault(fault);
        Ok(())
    }

    /// Injects an address-decoder fault.
    ///
    /// # Errors
    ///
    /// Returns an error if the fault references an address outside the
    /// memory.
    pub fn inject_decoder_fault(&mut self, fault: DecoderFault) -> Result<(), MemError> {
        self.decoder.inject(fault)
    }

    /// Normal write cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the data width
    /// does not match the memory IO width.
    pub fn write(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        self.config.check_address(address)?;
        self.config.check_width(data.width())?;
        self.trace.record(MemOp::write(address, data.clone()));
        self.apply_write(address, data, false);
        Ok(())
    }

    /// No Write Recovery Cycle write.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the data width
    /// does not match the memory IO width.
    pub fn write_nwrc(&mut self, address: Address, data: &DataWord) -> Result<(), MemError> {
        self.config.check_address(address)?;
        self.config.check_width(data.width())?;
        self.trace.record(MemOp::nwrc_write(address, data.clone()));
        self.apply_write(address, data, true);
        Ok(())
    }

    fn apply_write(&mut self, address: Address, data: &DataWord, nwrc: bool) {
        let rows = self.decoder.activated_rows(address);
        for row in rows {
            for bit in 0..self.config.width() {
                let coord = CellCoord::new(row, bit);
                let index = self.cell_index(coord);
                let before = self.cells[index].stored();
                let changed = if nwrc {
                    self.cells[index].write_nwrc(data.bit(bit))
                } else {
                    self.cells[index].write(data.bit(bit))
                };
                if changed {
                    let rose = !before;
                    self.apply_coupling_from(coord, rose);
                }
            }
        }
    }

    fn apply_coupling_from(&mut self, coord: CellCoord, aggressor_rose: bool) {
        let victims = match self.coupling_index.get(&(coord.address.index(), coord.bit)) {
            Some(v) => v.clone(),
            None => return,
        };
        for victim in victims {
            let index = self.cell_index(victim);
            let fault = self.cells[index].fault();
            if let Some(CellFault::Coupling { kind, .. }) = fault {
                match kind {
                    CouplingKind::Idempotent {
                        aggressor_rises,
                        forced_value,
                    } => {
                        if aggressor_rises == aggressor_rose {
                            self.cells[index].force(forced_value);
                        }
                    }
                    CouplingKind::Inversion { aggressor_rises } => {
                        if aggressor_rises == aggressor_rose {
                            let current = self.cells[index].stored();
                            self.cells[index].force(!current);
                        }
                    }
                    CouplingKind::State { .. } => {}
                }
            }
        }
    }

    fn apply_state_coupling(&mut self, coord: CellCoord) {
        let index = self.cell_index(coord);
        if let Some(CellFault::Coupling {
            aggressor,
            kind:
                CouplingKind::State {
                    aggressor_value,
                    forced_value,
                },
        }) = self.cells[index].fault()
        {
            let aggressor_index = self.cell_index(aggressor);
            if self.cells[aggressor_index].stored() == aggressor_value {
                self.cells[index].force(forced_value);
            }
        }
    }

    /// Normal read cycle; returns the word observed at the port.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn read(&mut self, address: Address) -> Result<DataWord, MemError> {
        self.config.check_address(address)?;
        let observed = self.observe(address);
        self.trace.record(MemOp::read(address, observed.clone()));
        Ok(observed)
    }

    fn observe(&mut self, address: Address) -> DataWord {
        let rows = self.decoder.activated_rows(address);
        let width = self.config.width();
        let observed = if rows.is_empty() {
            DataWord::splat(true, width)
        } else {
            let mut word = DataWord::splat(true, width);
            for row in &rows {
                for bit in 0..width {
                    let coord = CellCoord::new(*row, bit);
                    self.apply_state_coupling(coord);
                    let index = self.cell_index(coord);
                    let fault = self.cells[index].fault();
                    let outcome = if matches!(fault, Some(CellFault::StuckOpen)) {
                        crate::cell::CellReadOutcome {
                            observed: self.last_sense.bit(bit),
                            stored_after: self.cells[index].stored(),
                        }
                    } else {
                        self.cells[index].read()
                    };
                    word.set(bit, word.bit(bit) && outcome.observed);
                }
            }
            word
        };
        self.last_sense = observed.clone();
        observed
    }

    /// Read cycle whose data is discarded.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn read_ignored(&mut self, address: Address) -> Result<(), MemError> {
        self.config.check_address(address)?;
        let _ = self.observe(address);
        self.trace.record(MemOp::read_ignored(address));
        Ok(())
    }

    /// Retention pause of `pause_ms` milliseconds (walks every cell).
    pub fn elapse_retention(&mut self, pause_ms: f64) {
        let threshold = self.retention.decay_threshold_ms;
        for cell in &mut self.cells {
            cell.elapse_retention(pause_ms, threshold);
        }
        self.trace.record(MemOp::retention_pause(pause_ms));
    }

    /// Returns the stored word at `address` without a port read.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn peek(&self, address: Address) -> Result<DataWord, MemError> {
        self.config.check_address(address)?;
        let width = self.config.width();
        let mut word = DataWord::zero(width);
        for bit in 0..width {
            let index = self.cell_index(CellCoord::new(address, bit));
            word.set(bit, self.cells[index].stored());
        }
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::DecoderFaultKind;

    #[test]
    fn reference_model_reproduces_basic_fault_behaviour() {
        let mut sram = ReferenceSram::new(MemConfig::new(8, 4).unwrap());
        sram.inject_cell_fault(CellCoord::new(Address::new(2), 3), CellFault::StuckAt(true))
            .unwrap();
        sram.write(Address::new(2), &DataWord::zero(4)).unwrap();
        let observed = sram.read(Address::new(2)).unwrap();
        assert_eq!(observed.mismatches(&DataWord::zero(4)), vec![3]);
        assert_eq!(sram.trace().clock_cycles(), 2);
        assert_eq!(sram.config().words(), 8);
    }

    #[test]
    fn reference_model_no_access_decoder_fault_reads_ones() {
        let mut sram = ReferenceSram::new(MemConfig::new(8, 4).unwrap());
        sram.inject_decoder_fault(DecoderFault::new(Address::new(1), DecoderFaultKind::NoAccess))
            .unwrap();
        sram.write(Address::new(1), &DataWord::zero(4)).unwrap();
        assert_eq!(sram.read(Address::new(1)).unwrap(), DataWord::splat(true, 4));
        assert_eq!(sram.peek(Address::new(1)).unwrap(), DataWord::zero(4));
        sram.read_ignored(Address::new(0)).unwrap();
        sram.elapse_retention(100.0);
        assert_eq!(sram.trace_mut().clock_cycles(), 3);
    }
}
