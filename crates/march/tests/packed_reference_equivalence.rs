//! Dense-vs-overlay equivalence: the packed bit-plane [`Sram`] and the
//! dense per-cell [`ReferenceSram`] must observe *identical read
//! sequences* under identical fault injections and March programmes.
//!
//! This is the safety net of the storage-core refactor: the packed
//! array routes fault-free cells through limb copies and only faulty
//! cells through the behavioural state machine, and these properties
//! assert that the split is observationally invisible — over random
//! geometries (crossing the 64-bit limb boundary and the inline/heap
//! word threshold), random fault populations of every modelled class
//! (including intra-word coupling and decoder faults) and every March
//! programme in the library.

use fault_models::MemoryFault;
use march::{algorithms, DataBackground, MarchRunner, MarchSchedule, MarchTest};
use proptest::prelude::*;
use sram_model::cell::CellCoord;
use sram_model::{
    Address, CellFault, DataWord, DecoderFault, DecoderFaultKind, MemConfig, MemoryPort, ReferenceSram, Sram,
};
use testutil::FixtureRng;

/// Draws a random fault of any modelled class at a random site.
fn random_fault(rng: &mut FixtureRng, config: MemConfig) -> MemoryFault {
    let coord = CellCoord::new(
        Address::new(rng.below(config.words())),
        rng.below(config.width() as u64) as usize,
    );
    match rng.below(12) {
        0 => MemoryFault::stuck_at_0(coord),
        1 => MemoryFault::stuck_at_1(coord),
        2 => MemoryFault::transition_up(coord),
        3 => MemoryFault::transition_down(coord),
        4 => MemoryFault::data_retention_a(coord),
        5 => MemoryFault::data_retention_b(coord),
        6 => MemoryFault::cell(coord, CellFault::ReadDestructive),
        7 => MemoryFault::cell(coord, CellFault::DeceptiveReadDestructive),
        8 => MemoryFault::cell(coord, CellFault::StuckOpen),
        9 => {
            // Coupling with a random (possibly intra-word) aggressor.
            let aggressor = CellCoord::new(
                Address::new(rng.below(config.words())),
                rng.below(config.width() as u64) as usize,
            );
            match rng.below(3) {
                0 => MemoryFault::coupling_idempotent(coord, aggressor, rng_bool(rng), rng_bool(rng)),
                1 => MemoryFault::coupling_inversion(coord, aggressor, rng_bool(rng)),
                _ => MemoryFault::coupling_state(coord, aggressor, rng_bool(rng), rng_bool(rng)),
            }
        }
        10 => MemoryFault::decoder(DecoderFault::new(coord.address, DecoderFaultKind::NoAccess)),
        _ => {
            let target = Address::new(rng.below(config.words()));
            let kind = if rng_bool(rng) {
                DecoderFaultKind::MapsTo(target)
            } else {
                DecoderFaultKind::AlsoAccesses(target)
            };
            MemoryFault::decoder(DecoderFault::new(coord.address, kind))
        }
    }
}

fn rng_bool(rng: &mut FixtureRng) -> bool {
    rng.next_u64() & 1 == 1
}

fn programme(which: usize, width: usize) -> MarchSchedule {
    match which % 5 {
        0 => MarchSchedule::single(algorithms::mats_plus(), DataBackground::Solid),
        1 => MarchSchedule::single(algorithms::march_c_minus(), DataBackground::Checkerboard),
        2 => algorithms::march_cw(width),
        3 => MarchSchedule::single(
            algorithms::with_nwrtm(&algorithms::march_c_minus()),
            DataBackground::ColumnStripe,
        ),
        _ => MarchSchedule::single(
            algorithms::with_retention_pauses(&algorithms::march_c_minus(), 100),
            DataBackground::Solid,
        ),
    }
}

/// Builds the two models with the same faults injected.
fn build_pair(config: MemConfig, faults: &[MemoryFault]) -> (Sram, ReferenceSram) {
    let mut packed = Sram::new(config);
    let mut dense = ReferenceSram::new(config);
    for fault in faults {
        fault.inject_into(&mut packed).expect("fault fits");
        fault.inject_into(&mut dense).expect("fault fits");
    }
    (packed, dense)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed array and the dense reference observe identical read
    /// sequences (and end in identical states) for every March
    /// programme over random fault populations.
    #[test]
    fn march_programmes_observe_identical_read_sequences(
        words in 2u64..24,
        // The full constructible width domain: MemConfig rejects
        // anything past MemConfig::MAX_WIDTH at construction.
        width in 1usize..129,
        fault_count in 0usize..6,
        which in 0usize..5,
        seed in any::<u64>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let mut rng = FixtureRng::new(seed);
        let faults: Vec<MemoryFault> = (0..fault_count).map(|_| random_fault(&mut rng, config)).collect();
        let (mut packed, mut dense) = build_pair(config, &faults);

        let schedule = programme(which, width);
        let runner = MarchRunner::new();
        let packed_run = runner.run_schedule(&mut packed, &schedule).unwrap();
        let dense_run = runner.run_schedule(&mut dense, &schedule).unwrap();

        // Identical read sequences: every mismatch record (address,
        // expected, observed, failing bits, ordering) agrees.
        prop_assert_eq!(&packed_run, &dense_run);

        // And the final stored contents agree word by word.
        for address in config.addresses() {
            prop_assert_eq!(
                packed.peek(address).unwrap(),
                dense.peek(address).unwrap(),
                "stored contents diverge at {} (faults: {:?})", address, faults
            );
        }
    }

    /// A raw random port-operation sequence (writes, NWRC writes, reads,
    /// retention pauses) observes the same values on both models.
    #[test]
    fn random_port_sequences_observe_identical_values(
        words in 1u64..16,
        width in 1usize..70,
        fault_count in 0usize..5,
        op_count in 1usize..120,
        seed in any::<u64>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let mut rng = FixtureRng::new(seed);
        let faults: Vec<MemoryFault> = (0..fault_count).map(|_| random_fault(&mut rng, config)).collect();
        let (mut packed, mut dense) = build_pair(config, &faults);

        for _ in 0..op_count {
            let address = Address::new(rng.below(words));
            match rng.below(4) {
                0 | 1 => {
                    let mut data = DataWord::zero(width);
                    for bit in 0..width {
                        data.set(bit, rng.next_u64() & 1 == 1);
                    }
                    if rng.next_u64() & 1 == 0 {
                        MemoryPort::write(&mut packed, address, &data).unwrap();
                        MemoryPort::write(&mut dense, address, &data).unwrap();
                    } else {
                        MemoryPort::write_nwrc(&mut packed, address, &data).unwrap();
                        MemoryPort::write_nwrc(&mut dense, address, &data).unwrap();
                    }
                }
                2 => {
                    let from_packed = MemoryPort::read(&mut packed, address).unwrap();
                    let from_dense = MemoryPort::read(&mut dense, address).unwrap();
                    prop_assert_eq!(from_packed, from_dense, "read diverges at {}", address);
                }
                _ => {
                    let pause = [10.0f64, 100.0, 250.0][rng.below(3) as usize];
                    MemoryPort::elapse_retention(&mut packed, pause);
                    MemoryPort::elapse_retention(&mut dense, pause);
                }
            }
        }

        for address in config.addresses() {
            prop_assert_eq!(
                packed.peek(address).unwrap(),
                dense.peek(address).unwrap(),
                "stored contents diverge at {}", address
            );
        }
    }

    /// Multi-fault *interaction chains* behave identically on both
    /// models: a cascade of coupling faults in which each victim is the
    /// aggressor of the next (so one write can ripple through several
    /// cells, including intra-word links), optionally combined with a
    /// decoder fault redirecting traffic across the cascade and a cell
    /// fault sitting on one of the chain sites.
    #[test]
    fn coupling_cascades_with_decoder_and_cell_combinations_match_reference(
        words in 4u64..16,
        width in 2usize..80,
        chain_len in 2usize..5,
        which in 0usize..5,
        decoder_toggle in 0usize..2,
        seed in any::<u64>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let mut rng = FixtureRng::new(seed);

        // Distinct chain sites: site[i] is coupled to aggressor
        // site[i+1]; the head additionally carries a plain cell fault
        // half the time, so cascades compose with single-cell defects.
        let mut sites: Vec<CellCoord> = Vec::new();
        while sites.len() < chain_len + 1 {
            let coord = CellCoord::new(
                Address::new(rng.below(config.words())),
                rng.below(config.width() as u64) as usize,
            );
            if !sites.contains(&coord) {
                sites.push(coord);
            }
        }
        let mut faults: Vec<MemoryFault> = Vec::new();
        for pair in sites.windows(2) {
            let (victim, aggressor) = (pair[0], pair[1]);
            faults.push(match rng.below(3) {
                0 => MemoryFault::coupling_idempotent(victim, aggressor, rng_bool(&mut rng), rng_bool(&mut rng)),
                1 => MemoryFault::coupling_inversion(victim, aggressor, rng_bool(&mut rng)),
                _ => MemoryFault::coupling_state(victim, aggressor, rng_bool(&mut rng), rng_bool(&mut rng)),
            });
        }
        if rng_bool(&mut rng) {
            let head = sites[chain_len];
            faults.push(match rng.below(3) {
                0 => MemoryFault::stuck_at_1(head),
                1 => MemoryFault::transition_down(head),
                _ => MemoryFault::cell(head, CellFault::ReadDestructive),
            });
        }
        if decoder_toggle == 1 {
            let kind = match rng.below(3) {
                0 => DecoderFaultKind::NoAccess,
                1 => DecoderFaultKind::MapsTo(sites[1].address),
                _ => DecoderFaultKind::AlsoAccesses(sites[1].address),
            };
            faults.push(MemoryFault::decoder(DecoderFault::new(sites[0].address, kind)));
        }

        let (mut packed, mut dense) = build_pair(config, &faults);
        let schedule = programme(which, width);
        let runner = MarchRunner::new();
        let packed_run = runner.run_schedule(&mut packed, &schedule).unwrap();
        let dense_run = runner.run_schedule(&mut dense, &schedule).unwrap();
        prop_assert_eq!(&packed_run, &dense_run);
        for address in config.addresses() {
            prop_assert_eq!(
                packed.peek(address).unwrap(),
                dense.peek(address).unwrap(),
                "stored contents diverge at {} (chain: {:?})", address, faults
            );
        }
    }

    /// The fused `read_expect` port operation agrees with a plain read
    /// followed by a compare, on both models.
    #[test]
    fn read_expect_matches_read_plus_compare(
        words in 1u64..12,
        width in 1usize..70,
        fault_count in 0usize..4,
        seed in any::<u64>(),
    ) {
        let config = MemConfig::new(words, width).unwrap();
        let mut rng = FixtureRng::new(seed);
        let faults: Vec<MemoryFault> = (0..fault_count).map(|_| random_fault(&mut rng, config)).collect();
        let (mut packed, mut dense) = build_pair(config, &faults);

        let test: MarchTest = algorithms::march_c_minus();
        let runner = MarchRunner::new();
        // Drive both through a programme first so states are interesting.
        runner.run_test(&mut packed, &test, DataBackground::Solid).unwrap();
        runner.run_test(&mut dense, &test, DataBackground::Solid).unwrap();

        for address in config.addresses() {
            let expected = DataWord::splat(rng.next_u64() & 1 == 1, width);
            // Clone so the compared read sees the same pre-read state as
            // the plain read (read side effects may mutate cells).
            let mut packed_probe = packed.clone();
            let observed = MemoryPort::read(&mut packed_probe, address).unwrap();
            let via_expect = packed.read_expect(address, &expected).unwrap();
            let via_dense = MemoryPort::read_expect(&mut dense, address, &expected).unwrap();
            if observed == expected {
                prop_assert_eq!(via_expect, None);
                prop_assert_eq!(via_dense, None);
            } else {
                prop_assert_eq!(via_expect, Some(observed.clone()));
                prop_assert_eq!(via_dense, Some(observed));
            }
        }
    }
}
