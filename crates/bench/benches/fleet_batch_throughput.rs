//! P7: fleet-scale batched diagnosis — where serial job dispatch loses.
//!
//! A characterisation lot diagnoses many independent SoCs, each too
//! small to occupy the executor on its own: a job with three memories
//! cannot use more than three workers, so running jobs one after the
//! other leaves most of an 8-worker machine idle at every job
//! boundary. The fleet runner flattens all jobs' members into one
//! global cost-weighted work list, so the only idle time left is the
//! final partial segment of the *whole fleet*.
//!
//! This host may have a single core, so the bench measures the
//! **modeled critical path** (the pattern of `fault_sim_heterogeneous`):
//! the wall-clock of the most loaded worker under a modeled
//! `MODEL_WORKERS`-worker partition, obtained by *executing* exactly
//! that worker's member share sequentially. The partitions come from
//! the same pure functions the executor uses ([`even_ranges`],
//! [`cost_ranges`], [`steal_schedule`]), fed by the fleet plan's own
//! calibrated costs ([`FleetPlan::member_costs`]):
//!
//! * `serial_jobs_critical_path_8w` — jobs dispatched one at a time,
//!   each alone on the 8 workers: the modeled wall-clock is the *sum*
//!   of every job's own bottleneck share (one 512×100 member per job —
//!   the small members ride along on otherwise idle workers).
//! * `batched_cost_8w` / `batched_steal_8w` — the whole fleet in one
//!   run: the bottleneck worker of the global cost-weighted
//!   (respectively stealing) partition over all members.
//! * `fleet_end_to_end_sequential` — one full [`FleetRunner::run`]
//!   (build + plan + diagnose) on one thread: the total work, and a
//!   standing proof the batched pipeline runs end to end.
//!
//! The batched bottlenecks must beat serial dispatch by at least
//! [`REQUIRED_SPEEDUP`]× in modeled cost — asserted deterministically
//! from the cost table, so the claim cannot silently rot on a noisy
//! host — and the measured entries record what that means in
//! wall-clock. The CI perf gate (`perf_gate --strict --prefix fleet`)
//! keeps every entry within 2× of the committed ledger.
//!
//! When `ESRAM_CALIB_PATH` is set, the active [`CostCalibration`]
//! table (the weights the partitions above were computed from) is
//! exported there as JSON; CI uploads it next to the fresh ledger so a
//! gated run documents the exact cost model it was gated under.

use bench::print_section;
use criterion::{criterion_group, criterion_main, Criterion};
use esram_diag::{DiagnosisResult, FastScheme, FleetJob, FleetPlan, FleetRunner, Soc};
use esram_exec::{cost_ranges, even_ranges, steal_schedule, CostCalibration, DEFAULT_BLOCK_SIZE};
use march::ShardPlan;
use sram_model::{MemoryId, Sram};
use std::hint::black_box;
use std::ops::Range;

/// Modeled worker count for the critical-path partitions.
const MODEL_WORKERS: usize = 8;

/// Minimum modeled speedup of batched over serial dispatch.
const REQUIRED_SPEEDUP: f64 = 2.0;

/// The fleet: 32 mixed-geometry SoCs, each one benchmark-sized e-SRAM
/// (512×100, from [16]) plus two small buffers — small enough that a
/// solo job can never load more than three of the eight workers.
fn fleet_jobs() -> Vec<FleetJob> {
    (0..32u64)
        .map(|index| {
            FleetJob::new(
                Soc::builder()
                    .memory(512, 100)
                    .expect("valid geometry")
                    .memory(64, 16)
                    .expect("valid geometry")
                    .memory(96, 24)
                    .expect("valid geometry")
                    .defect_rate(0.01)
                    .seed(0xF1EE7 + index),
                FastScheme::new(10.0),
            )
        })
        .collect()
}

/// Modeled cost of an index set.
fn modeled_cost(costs: &[u64], ranges: &[Range<usize>]) -> u128 {
    ranges
        .iter()
        .flat_map(|range| range.clone())
        .map(|index| u128::from(costs[index]))
        .sum()
}

/// The most expensive shard of a contiguous partition, as a range set.
fn bottleneck_contiguous(costs: &[u64], ranges: Vec<Range<usize>>) -> Vec<Range<usize>> {
    ranges
        .into_iter()
        .max_by_key(|range| modeled_cost(costs, std::slice::from_ref(range)))
        .map(|range| vec![range])
        .unwrap_or_default()
}

/// The most loaded worker of the greedy stealing model.
fn bottleneck_steal(costs: &[u64]) -> Vec<Range<usize>> {
    steal_schedule(costs, DEFAULT_BLOCK_SIZE, MODEL_WORKERS)
        .into_iter()
        .max_by_key(|ranges| modeled_cost(costs, ranges))
        .unwrap_or_default()
}

/// Replays the flattened members of `ranges` through their jobs'
/// population plans — exactly the work the modeled bottleneck worker
/// executes. `starts[job]` is the job's offset in the flat member list.
fn run_share(plan: &FleetPlan, socs: &mut [Soc], starts: &[usize], ranges: &[Range<usize>]) -> usize {
    let jobs = plan.member_jobs();
    let mut located = 0;
    for range in ranges {
        let mut index = range.start;
        while index < range.end {
            let job = jobs[index];
            let end = (starts[job] + socs[job].memories().len()).min(range.end);
            let base = index - starts[job];
            let mut pairs: Vec<(MemoryId, &mut Sram)> = socs[job].memories_mut()[base..end - starts[job]]
                .iter_mut()
                .map(|m| (m.id, &mut m.sram))
                .collect();
            let outcome = plan
                .population_plan(job)
                .run_segment(base, &mut pairs)
                .expect("segment replays");
            drop(outcome);
            located += 1;
            index = end;
        }
    }
    located
}

/// Per-job serial baselines (1 thread), for the identity check.
fn serial_results(jobs: &[FleetJob]) -> Vec<DiagnosisResult> {
    jobs.iter()
        .map(|job| {
            let mut soc = job
                .builder()
                .clone()
                .build_with(ShardPlan::with_threads(1))
                .unwrap();
            job.scheme()
                .diagnose_with(ShardPlan::with_threads(1), soc.memories_mut())
                .unwrap()
        })
        .collect()
}

fn export_calibration() {
    if let Ok(path) = std::env::var("ESRAM_CALIB_PATH") {
        if let Err(error) = std::fs::write(&path, CostCalibration::current().to_json()) {
            eprintln!("warning: could not write calibration table {path}: {error}");
        } else {
            println!("calibration table exported to {path}");
        }
    }
}

fn bench_fleet(c: &mut Criterion) {
    let jobs = fleet_jobs();
    let runner = FleetRunner::new(ShardPlan::with_threads(1));
    let plan = runner.plan(&jobs).expect("fleet plans");
    let costs = plan.member_costs();
    let member_jobs = plan.member_jobs();
    let mut starts = vec![0usize; jobs.len()];
    let mut lens = vec![0usize; jobs.len()];
    for (index, &job) in member_jobs.iter().enumerate() {
        if index == 0 || member_jobs[index - 1] != job {
            starts[job] = index;
        }
        lens[job] += 1;
    }

    // Serial dispatch: each job partitioned alone over the 8 workers;
    // the fleet's modeled wall-clock is the sum of per-job bottlenecks.
    let mut serial_share: Vec<Range<usize>> = Vec::new();
    let mut serial_modeled: u128 = 0;
    for job in 0..jobs.len() {
        let (start, len) = (starts[job], lens[job]);
        let job_costs = &costs[start..start + len];
        let local = bottleneck_contiguous(job_costs, cost_ranges(job_costs, MODEL_WORKERS));
        serial_modeled += modeled_cost(job_costs, &local);
        serial_share.extend(
            local
                .into_iter()
                .map(|range| start + range.start..start + range.end),
        );
    }

    // Batched dispatch: one global partition over every member.
    let even = bottleneck_contiguous(&costs, even_ranges(costs.len(), MODEL_WORKERS));
    let cost = bottleneck_contiguous(&costs, cost_ranges(&costs, MODEL_WORKERS));
    let steal = bottleneck_steal(&costs);
    let (even_modeled, cost_modeled, steal_modeled) = (
        modeled_cost(&costs, &even),
        modeled_cost(&costs, &cost),
        modeled_cost(&costs, &steal),
    );
    let total: u128 = costs.iter().map(|&c| u128::from(c)).sum();
    let cost_speedup = serial_modeled as f64 / cost_modeled as f64;
    let steal_speedup = serial_modeled as f64 / steal_modeled as f64;
    assert!(
        cost_speedup >= REQUIRED_SPEEDUP && steal_speedup >= REQUIRED_SPEEDUP,
        "batched dispatch must model a >= {REQUIRED_SPEEDUP}x win over serial job dispatch \
         (cost {cost_speedup:.2}x, steal {steal_speedup:.2}x, serial bottleneck {serial_modeled})"
    );

    print_section("P7: fleet batching — modeled 8-worker critical paths over 32 SoC jobs");
    println!(
        "fleet: {} jobs, {} members, total modeled cost {total} (ideal critical path {})",
        plan.job_count(),
        plan.member_count(),
        total / MODEL_WORKERS as u128
    );
    println!(
        "modeled bottleneck cost: serial-jobs {serial_modeled}, batched even {even_modeled}, \
         batched cost {cost_modeled} ({cost_speedup:.1}x over serial), batched steal \
         {steal_modeled} ({steal_speedup:.1}x over serial)"
    );

    // The batched pipeline must be byte-identical to per-job serial
    // runs before its speed is worth recording.
    let baseline = serial_results(&jobs);
    let outcomes = FleetRunner::new(ShardPlan::with_threads(MODEL_WORKERS))
        .run_all(&jobs)
        .expect("fleet runs");
    assert_eq!(outcomes.len(), baseline.len());
    for (outcome, expected) in outcomes.iter().zip(&baseline) {
        assert_eq!(outcome.result(), expected, "fleet output must match solo runs");
    }

    let mut socs = runner.build(&plan).expect("fleet builds");
    let mut group = c.benchmark_group("fleet_batch_throughput");
    group.sample_size(10);
    group.bench_function("serial_jobs_critical_path_8w", |b| {
        b.iter(|| black_box(run_share(&plan, &mut socs, &starts, &serial_share)))
    });
    group.bench_function("batched_cost_8w", |b| {
        b.iter(|| black_box(run_share(&plan, &mut socs, &starts, &cost)))
    });
    group.bench_function("batched_steal_8w", |b| {
        b.iter(|| black_box(run_share(&plan, &mut socs, &starts, &steal)))
    });
    group.bench_function("fleet_end_to_end_sequential", |b| {
        b.iter(|| {
            black_box(
                FleetRunner::new(ShardPlan::with_threads(1))
                    .run_all(&jobs)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();

    export_calibration();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
