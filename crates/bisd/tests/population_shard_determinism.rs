//! Sharded population diagnosis must be *byte-identical* to the
//! sequential walk:
//!
//! * `FastScheme::diagnose_ports_with` returns the identical
//!   [`bisd::DiagnosisResult`] — comparator log in exact record order,
//!   cycles, pause accounting — for every worker count;
//! * `HuangScheme::diagnose_with` iterates globally with sharded
//!   passes, and its log/iteration/cycle accounting never depends on
//!   the plan;
//! * the default (environment-driven) plan used by the
//!   [`DiagnosisScheme::diagnose`] entry points equals the explicit
//!   sequential plan — this is what the CI thread-matrix job sweeps
//!   over `ESRAM_DIAG_THREADS` ∈ {1, 2, 7, 32}.

use bisd::{DiagnosisScheme, DrfMode, FastScheme, HuangScheme, MemoryUnderDiagnosis};
use fault_models::{DefectProfile, FaultInjector};
use march::{ShardPlan, ShardStrategy};
use sram_model::{MemConfig, MemoryId};

const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 32];

/// A heterogeneous defective population: mixed word counts and widths
/// (so shard segments cut across value and width classes), every
/// defect class in the mix, one memory left pristine, and enough
/// members that 7- and 32-worker plans produce uneven segments.
fn population(seed: u64, defect_rate: f64) -> Vec<MemoryUnderDiagnosis> {
    let geometries: [(u64, usize); 11] = [
        (32, 8),
        (16, 4),
        (24, 6),
        (32, 8),
        (8, 3),
        (64, 16),
        (16, 4),
        (48, 10),
        (32, 8),
        (16, 16),
        (64, 5),
    ];
    let profile = DefectProfile::with_data_retention(defect_rate);
    geometries
        .iter()
        .enumerate()
        .map(|(index, &(words, width))| {
            let id = MemoryId::new(index as u32);
            let config = MemConfig::new(words, width).expect("valid geometry");
            if index == 4 {
                MemoryUnderDiagnosis::pristine(id, config)
            } else {
                let mut injector = FaultInjector::for_stream(seed, index as u64);
                MemoryUnderDiagnosis::with_defects(id, config, &mut injector, &profile)
                    .expect("defect injection succeeds")
            }
        })
        .collect()
}

#[test]
fn fast_scheme_output_is_byte_identical_for_every_thread_count() {
    for (seed, rate) in [(1u64, 0.02), (42, 0.05)] {
        let mut sequential_population = population(seed, rate);
        let sequential = FastScheme::new(10.0)
            .diagnose_with(ShardPlan::sequential(), &mut sequential_population)
            .expect("sequential run");
        assert!(!sequential.is_clean(), "the population must contain faults");

        for threads in THREAD_COUNTS {
            let mut sharded_population = population(seed, rate);
            let sharded = FastScheme::new(10.0)
                .diagnose_with(ShardPlan::with_threads(threads), &mut sharded_population)
                .expect("sharded run");
            assert_eq!(
                sharded, sequential,
                "fast-scheme output diverged from sequential at {threads} threads (seed {seed})"
            );
            // Byte-identical includes exact record order, not just sets.
            assert_eq!(sharded.log.records(), sequential.log.records());
        }
    }
}

#[test]
fn fast_scheme_drf_modes_and_ablations_shard_identically() {
    // NWRTM (NWRC writes), retention pauses (per-element ageing on
    // every worker) and the LSB-first ablation (order-sensitive
    // delivery) all have to survive sharding bit for bit.
    let schemes = [
        FastScheme::new(10.0),
        FastScheme::new(10.0).with_drf_mode(DrfMode::None),
        FastScheme::new(10.0).with_drf_mode(DrfMode::RetentionPause(100)),
        FastScheme::new(10.0)
            .with_shift_order(serial::ShiftOrder::LsbFirst)
            .with_drf_mode(DrfMode::None),
        FastScheme::new(10.0).with_march_c_minus(),
    ];
    for scheme in schemes {
        let mut sequential_population = population(7, 0.03);
        let sequential = scheme
            .diagnose_with(ShardPlan::sequential(), &mut sequential_population)
            .expect("sequential run");
        for threads in THREAD_COUNTS {
            let mut sharded_population = population(7, 0.03);
            let sharded = scheme
                .diagnose_with(ShardPlan::with_threads(threads), &mut sharded_population)
                .expect("sharded run");
            assert_eq!(
                sharded, sequential,
                "{scheme:?} diverged from sequential at {threads} threads"
            );
        }
    }
}

#[test]
fn huang_scheme_output_is_byte_identical_for_every_thread_count() {
    for scheme in [
        HuangScheme::new(10.0),
        HuangScheme::new(10.0).with_retention_pause(100),
        HuangScheme::new(10.0).with_max_iterations(3),
    ] {
        let mut sequential_population = population(11, 0.04);
        let sequential = scheme
            .diagnose_with(ShardPlan::sequential(), &mut sequential_population)
            .expect("sequential run");
        assert!(!sequential.is_clean(), "the population must contain faults");

        for threads in THREAD_COUNTS {
            let mut sharded_population = population(11, 0.04);
            let sharded = scheme
                .diagnose_with(ShardPlan::with_threads(threads), &mut sharded_population)
                .expect("sharded run");
            assert_eq!(
                sharded, sequential,
                "baseline output diverged from sequential at {threads} threads"
            );
            assert_eq!(sharded.iterations, sequential.iterations);
            assert_eq!(sharded.log.records(), sequential.log.records());
        }
    }
}

#[test]
fn both_schemes_are_byte_identical_under_every_strategy() {
    // The population mixes IO widths (the fast scheme's cost model) and
    // cell counts (the baseline's), so cost-weighted segment boundaries
    // differ from even ones, and a block size of 2 forces stealing to
    // cut mid-population — none of which may show in the output.
    let fast_sequential = {
        let mut population = population(13, 0.04);
        FastScheme::new(10.0)
            .diagnose_with(ShardPlan::sequential(), &mut population)
            .expect("sequential fast run")
    };
    let huang_sequential = {
        let mut population = population(13, 0.04);
        HuangScheme::new(10.0)
            .diagnose_with(ShardPlan::sequential(), &mut population)
            .expect("sequential baseline run")
    };
    assert!(!fast_sequential.is_clean(), "the population must contain faults");
    for strategy in ShardStrategy::all() {
        for threads in [2, 7, 32] {
            let plan = ShardPlan::with_threads(threads)
                .with_strategy(strategy)
                .with_block_size(2);
            let mut fast_population = population(13, 0.04);
            let fast = FastScheme::new(10.0)
                .diagnose_with(plan, &mut fast_population)
                .expect("sharded fast run");
            assert_eq!(fast, fast_sequential, "fast scheme diverged under {plan}");
            let mut huang_population = population(13, 0.04);
            let huang = HuangScheme::new(10.0)
                .diagnose_with(plan, &mut huang_population)
                .expect("sharded baseline run");
            assert_eq!(huang, huang_sequential, "baseline diverged under {plan}");
        }
    }
}

#[test]
fn default_env_driven_plan_equals_the_explicit_sequential_plan() {
    // The trait entry points run under `ShardPlan::from_env()`; whatever
    // `ESRAM_DIAG_THREADS` the CI matrix sets, the result must equal the
    // sequential oracle.
    let mut fast_default = population(5, 0.03);
    let fast = FastScheme::new(10.0)
        .diagnose(&mut fast_default)
        .expect("default fast run");
    let mut fast_sequential = population(5, 0.03);
    let fast_oracle = FastScheme::new(10.0)
        .diagnose_with(ShardPlan::sequential(), &mut fast_sequential)
        .expect("sequential fast run");
    assert_eq!(
        fast,
        fast_oracle,
        "default-plan fast diagnosis diverged under {}",
        ShardPlan::from_env()
    );

    let mut huang_default = population(5, 0.03);
    let huang = HuangScheme::new(10.0)
        .diagnose(&mut huang_default)
        .expect("default baseline run");
    let mut huang_sequential = population(5, 0.03);
    let huang_oracle = HuangScheme::new(10.0)
        .diagnose_with(ShardPlan::sequential(), &mut huang_sequential)
        .expect("sequential baseline run");
    assert_eq!(
        huang,
        huang_oracle,
        "default-plan baseline diagnosis diverged under {}",
        ShardPlan::from_env()
    );
}

#[test]
fn single_memory_population_shards_trivially() {
    // More workers than memories: the plan degenerates to one shard and
    // must not change anything.
    let make = || {
        let mut injector = FaultInjector::for_stream(3, 0);
        vec![MemoryUnderDiagnosis::with_defects(
            MemoryId::new(0),
            MemConfig::new(32, 8).expect("valid geometry"),
            &mut injector,
            &DefectProfile::date2005(0.05),
        )
        .expect("defect injection succeeds")]
    };
    let mut a = make();
    let mut b = make();
    let sequential = FastScheme::new(10.0)
        .diagnose_with(ShardPlan::sequential(), &mut a)
        .expect("sequential run");
    let sharded = FastScheme::new(10.0)
        .diagnose_with(ShardPlan::with_threads(32), &mut b)
        .expect("sharded run");
    assert_eq!(sharded, sequential);
}

#[test]
fn both_kernels_shard_identically_under_every_strategy() {
    // The kernel knob composes with sharding: for each kernel the
    // sharded run must equal that kernel's own sequential walk, and the
    // two kernels' sequential walks must equal each other — so the CI
    // matrix rows that pin `ESRAM_DIAG_KERNEL=permem` gate exactly the
    // same bytes as the default bit-parallel rows.
    use bisd::DiagnosisKernel;
    let oracle = {
        let mut population = population(17, 0.04);
        FastScheme::new(10.0)
            .with_kernel(DiagnosisKernel::PerMemory)
            .diagnose_with(ShardPlan::sequential(), &mut population)
            .expect("sequential oracle run")
    };
    assert!(!oracle.is_clean(), "the population must contain faults");
    for kernel in DiagnosisKernel::all() {
        for strategy in ShardStrategy::all() {
            for threads in [1, 7, 32] {
                let plan = ShardPlan::with_threads(threads)
                    .with_strategy(strategy)
                    .with_block_size(2);
                let mut sharded_population = population(17, 0.04);
                let sharded = FastScheme::new(10.0)
                    .with_kernel(kernel)
                    .diagnose_with(plan, &mut sharded_population)
                    .expect("sharded run");
                assert_eq!(
                    sharded, oracle,
                    "kernel {kernel} diverged from the sequential oracle under {plan}"
                );
            }
        }
    }
}

#[test]
fn ambient_kernel_knob_is_well_formed() {
    // The determinism matrix sets `ESRAM_DIAG_KERNEL` per row; a typo
    // there must fail the suite loudly, not fall back silently.
    if let Ok(raw) = std::env::var(bisd::KERNEL_ENV) {
        assert!(
            bisd::DiagnosisKernel::parse(&raw).is_some(),
            "{}={raw:?} is not a valid kernel (expected one of: bitparallel, permem)",
            bisd::KERNEL_ENV
        );
    }
}
