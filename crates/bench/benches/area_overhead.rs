//! E6: Sec. 4.3 area-overhead estimation (transistor counts in 6T-cell
//! equivalents and global-wire accounting).

use bench::print_section;
use criterion::{criterion_group, criterion_main, Criterion};
use esram_diag::area::AreaModel;
use esram_diag::MemConfig;
use std::hint::black_box;
use std::time::Duration;

fn print_area_tables() {
    let model = AreaModel::date2005();
    print_section("E6: Sec. 4.3 area overhead");
    println!(
        "per IO bit: baseline interface {:.1} cells, proposed SPC+PSC {:.1} cells, extra {:.1} cells (paper: 3)",
        model.baseline_interface_per_bit(),
        model.proposed_interface_per_bit(),
        model.extra_per_bit()
    );

    println!(
        "\n{:<14} {:>12} {:>14} {:>14} {:>12} {:>10}",
        "memory", "array cells", "baseline %", "proposed %", "extra %", "wires"
    );
    let geometries = [
        MemConfig::date2005_benchmark(),
        MemConfig::new(1024, 64).expect("valid"),
        MemConfig::new(256, 32).expect("valid"),
        MemConfig::new(64, 16).expect("valid"),
        MemConfig::new(16, 8).expect("valid"),
    ];
    for config in geometries {
        let report = model.report(config);
        println!(
            "{:<14} {:>12.0} {:>13.2}% {:>13.2}% {:>11.2}% {:>7}+{}",
            config.to_string(),
            report.array_cells,
            report.baseline_overhead_ratio() * 100.0,
            report.proposed_overhead_ratio() * 100.0,
            report.extra_overhead_ratio() * 100.0,
            report.baseline_global_wires,
            report.extra_global_wires()
        );
    }

    let population: Vec<MemConfig> = std::iter::repeat_n(MemConfig::date2005_benchmark(), 8).collect();
    let report = model.report_for_population(&population);
    println!("\npopulation of 8 benchmark e-SRAMs: {report}");
    println!("paper: ~1.8 % total overhead, +1 global wire, +3 cells per IO bit (see EXPERIMENTS.md)");
}

fn bench_area(c: &mut Criterion) {
    print_area_tables();

    let mut group = c.benchmark_group("area_overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    let configs: Vec<MemConfig> = (0..64)
        .map(|i| MemConfig::new(64 + i, 8 + (i as usize % 32)).expect("valid"))
        .collect();
    group.bench_function("population_area_report_64_memories", |b| {
        let model = AreaModel::date2005();
        b.iter(|| black_box(model.report_for_population(&configs)))
    });
    group.finish();
}

criterion_group!(benches, bench_area);
criterion_main!(benches);
